//! Pricing rules for every cloud service the paper touches, plus the cost
//! curves behind Figure 1.

use splitserve_des::SimDuration;

use crate::instance::InstanceType;

/// AWS Lambda price per GB-second of allocated memory (us-east-1, 2020).
pub const LAMBDA_USD_PER_GB_SEC: f64 = 0.000_016_67;
/// AWS Lambda price per invocation ($0.20 per million requests).
pub const LAMBDA_USD_PER_INVOCATION: f64 = 0.000_000_2;
/// Lambda billing granularity: run time is rounded up to 100 ms.
pub const LAMBDA_BILLING_QUANTUM: SimDuration = SimDuration::from_millis(100);
/// Largest memory allocation a Lambda may request (the paper's 3 GB cap).
pub const LAMBDA_MAX_MEMORY_MB: u64 = 3_008;
/// Memory per vCPU: a 1 536 MB Lambda gets one full vCPU.
pub const LAMBDA_MB_PER_VCPU: u64 = 1_536;
/// Lambda ephemeral `/tmp` storage (bytes): 512 MB.
pub const LAMBDA_TMP_BYTES: u64 = 512 * 1024 * 1024;
/// Hard lifetime limit after which AWS kills a Lambda: 15 minutes.
pub const LAMBDA_LIFETIME: SimDuration = SimDuration::from_secs(900);

/// VM billing granularity: 1 second increments…
pub const VM_BILLING_QUANTUM: SimDuration = SimDuration::from_secs(1);
/// …after a 60-second minimum charge per instance launch.
pub const VM_MINIMUM_BILLED: SimDuration = SimDuration::from_secs(60);

/// S3 PUT/COPY/POST/LIST price per request.
pub const S3_USD_PER_PUT: f64 = 0.005 / 1_000.0;
/// S3 GET/SELECT price per request.
pub const S3_USD_PER_GET: f64 = 0.0004 / 1_000.0;
/// SQS price per request (send or receive), standard queue.
pub const SQS_USD_PER_REQUEST: f64 = 0.40 / 1_000_000.0;

/// Billed cost of running a VM of `itype` for `runtime`: per-second
/// rounding with a 60 s minimum — the staircase of Figure 1.
///
/// # Examples
///
/// ```
/// use splitserve_cloud::{vm_cost, M4_LARGE};
/// use splitserve_des::SimDuration;
///
/// // 10 s of m4.large still bills the 60 s minimum.
/// let short = vm_cost(&M4_LARGE, SimDuration::from_secs(10));
/// let minute = vm_cost(&M4_LARGE, SimDuration::from_secs(60));
/// assert_eq!(short, minute);
/// ```
pub fn vm_cost(itype: &InstanceType, runtime: SimDuration) -> f64 {
    let billed = if runtime < VM_MINIMUM_BILLED {
        VM_MINIMUM_BILLED
    } else {
        runtime.round_up_to(VM_BILLING_QUANTUM)
    };
    itype.hourly_usd / 3_600.0 * billed.as_secs_f64()
}

/// Billed compute cost of one Lambda invocation of `memory_mb` running for
/// `runtime` (excluding the per-invocation fee): 100 ms granularity.
pub fn lambda_compute_cost(memory_mb: u64, runtime: SimDuration) -> f64 {
    let billed = runtime.round_up_to(LAMBDA_BILLING_QUANTUM);
    let gb = memory_mb as f64 / 1_024.0;
    LAMBDA_USD_PER_GB_SEC * gb * billed.as_secs_f64()
}

/// Total billed cost of one Lambda invocation including the request fee.
pub fn lambda_cost(memory_mb: u64, runtime: SimDuration) -> f64 {
    lambda_compute_cost(memory_mb, runtime) + LAMBDA_USD_PER_INVOCATION
}

/// The vCPU share a Lambda of `memory_mb` receives relative to a full VM
/// core (AWS allocates CPU proportionally to memory, one vCPU per 1 536 MB).
pub fn lambda_cpu_share(memory_mb: u64) -> f64 {
    (memory_mb as f64 / LAMBDA_MB_PER_VCPU as f64).min(2.0)
}

/// One point of Figure 1: cost of one vCPU procured for `t`, via a
/// m4.large VM (price halved: the instance has two vCPUs) vs. a 1 536 MB
/// Lambda.
pub fn fig1_vcpu_cost_at(itype: &InstanceType, t: SimDuration) -> (f64, f64) {
    let vm = vm_cost(itype, t) / itype.vcpus as f64;
    let la = lambda_cost(LAMBDA_MB_PER_VCPU, t);
    (vm, la)
}

/// The time-in-use after which the Lambda becomes more expensive than the
/// VM vCPU (the crossover visible in Figure 1), found by scanning at 100 ms
/// resolution up to `horizon`.
///
/// Returns `None` if no crossover occurs within `horizon`.
pub fn fig1_crossover(itype: &InstanceType, horizon: SimDuration) -> Option<SimDuration> {
    let step = LAMBDA_BILLING_QUANTUM;
    let mut t = step;
    while t <= horizon {
        let (vm, la) = fig1_vcpu_cost_at(itype, t);
        if la > vm {
            return Some(t);
        }
        t += step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{M4_LARGE, M4_XLARGE};

    #[test]
    fn vm_minimum_charge_is_flat_for_first_minute() {
        let c10 = vm_cost(&M4_LARGE, SimDuration::from_secs(10));
        let c59 = vm_cost(&M4_LARGE, SimDuration::from_secs(59));
        let c60 = vm_cost(&M4_LARGE, SimDuration::from_secs(60));
        assert_eq!(c10, c59);
        assert_eq!(c59, c60);
        // Exactly one minute of $0.10/h.
        assert!((c60 - 0.10 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn vm_cost_steps_per_second_after_minimum() {
        let c60 = vm_cost(&M4_LARGE, SimDuration::from_secs(60));
        let c61 = vm_cost(&M4_LARGE, SimDuration::from_secs(61));
        let c61_5 = vm_cost(&M4_LARGE, SimDuration::from_millis(60_500));
        assert!(c61 > c60);
        assert_eq!(c61_5, c61, "sub-second rounds up to 61 s");
        let per_sec = 0.10 / 3_600.0;
        assert!((c61 - c60 - per_sec).abs() < 1e-12);
    }

    #[test]
    fn lambda_cost_steps_per_100ms() {
        let c1 = lambda_compute_cost(1_536, SimDuration::from_millis(100));
        let c2 = lambda_compute_cost(1_536, SimDuration::from_millis(101));
        let c3 = lambda_compute_cost(1_536, SimDuration::from_millis(200));
        assert!(c2 > c1);
        assert_eq!(c2, c3);
        // 1.5 GB for 0.1 s.
        assert!((c1 - LAMBDA_USD_PER_GB_SEC * 1.5 * 0.1).abs() < 1e-12);
    }

    #[test]
    fn fig1_lambda_starts_cheaper_then_crosses() {
        // At 1 s, Lambda ≪ VM minimum charge.
        let (vm, la) = fig1_vcpu_cost_at(&M4_LARGE, SimDuration::from_secs(1));
        assert!(la < vm, "lambda {la} vs vm {vm} at 1s");
        // A crossover exists within 2 hours…
        let x = fig1_crossover(&M4_LARGE, SimDuration::from_secs(7_200))
            .expect("crossover must exist");
        // …and falls after the VM's 60 s minimum flat region.
        assert!(x > SimDuration::from_secs(10), "crossover {x} too early");
        // After the crossover the Lambda stays more expensive.
        let (vm, la) = fig1_vcpu_cost_at(&M4_LARGE, x + SimDuration::from_secs(600));
        assert!(la > vm);
    }

    #[test]
    fn lambda_cpu_share_scales_with_memory() {
        assert!((lambda_cpu_share(1_536) - 1.0).abs() < 1e-12);
        assert!((lambda_cpu_share(768) - 0.5).abs() < 1e-12);
        assert!(lambda_cpu_share(3_008) > 1.9);
    }

    #[test]
    fn bigger_vm_has_cheaper_vcpu_only_sometimes() {
        // Sanity: per-vCPU price of m4.large and m4.xlarge is identical in
        // the m4 family ($0.05/vCPU/h).
        let a = M4_LARGE.hourly_usd / M4_LARGE.vcpus as f64;
        let b = M4_XLARGE.hourly_usd / M4_XLARGE.vcpus as f64;
        assert!((a - b).abs() < 1e-12);
    }
}
