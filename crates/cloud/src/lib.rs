//! # splitserve-cloud — the simulated IaaS/FaaS substrate
//!
//! Models the two AWS services whose *timing and pricing asymmetry* the
//! SplitServe paper exploits:
//!
//! - **VMs** (EC2 m4 family): minutes-long boot delays, per-second billing
//!   with a 60-second minimum, generous per-node memory and dedicated
//!   EBS/network bandwidth ([`InstanceType`], [`Cloud::request_vm`]).
//! - **Cloud functions** (Lambda): ~100 ms warm starts, 100 ms-granularity
//!   GB-second billing plus an invocation fee, ≤3 GB memory, a hard
//!   15-minute lifetime, and network bandwidth proportional to memory with
//!   per-container jitter ([`Cloud::invoke_lambda`]).
//!
//! Every resource's spend lands in a [`Ledger`] so experiments can report
//! the same cost columns the paper does (Figures 1 and 8).
//!
//! # Examples
//!
//! ```
//! use splitserve_cloud::{Cloud, CloudSpec, M4_LARGE};
//! use splitserve_des::{Fabric, Sim};
//!
//! let mut sim = Sim::new(1);
//! let cloud = Cloud::new(CloudSpec::default(), Fabric::new());
//!
//! // A job arrives: two cores are free on a VM, three more come from Lambdas.
//! let vm = cloud.provision_vm_ready(&mut sim, M4_LARGE);
//! for _ in 0..3 {
//!     cloud.invoke_lambda(&mut sim, 1536, |_sim, id| {
//!         // executor registration would happen here
//!         let _ = id;
//!     }, |_sim, _id| { /* lifetime kill */ });
//! }
//! sim.run();
//! assert_eq!(cloud.vm_cores(vm), 2);
//! ```

#![warn(missing_docs)]

mod billing;
mod cloud;
pub mod coldstart;
mod instance;
mod pricing;

pub use billing::{Category, Charge, Ledger};
pub use cloud::{Cloud, CloudSpec, LambdaId, LambdaState, VmId, VmState, PREWARMED_LAMBDA_MB};
pub use coldstart::{
    ColdStartPolicy, ColdStartSpec, EvictReason, FixedKeepalive, HybridHistogram,
    HybridHistogramSpec, ParkOrigin, PoolDecision, PoolEvent, PoolStats, UnloadOnPressure,
    WarmPool, FOREVER_US,
};
pub use instance::{
    fewest_instances_for_cores, m4_family, InstanceType, M4_10XLARGE, M4_16XLARGE, M4_2XLARGE,
    M4_4XLARGE, M4_8XLARGE, M4_LARGE, M4_XLARGE,
};
pub use pricing::{
    fig1_crossover, fig1_vcpu_cost_at, lambda_compute_cost, lambda_cost, lambda_cpu_share,
    vm_cost, LAMBDA_BILLING_QUANTUM, LAMBDA_LIFETIME, LAMBDA_MAX_MEMORY_MB, LAMBDA_MB_PER_VCPU,
    LAMBDA_TMP_BYTES, LAMBDA_USD_PER_GB_SEC, LAMBDA_USD_PER_INVOCATION, S3_USD_PER_GET,
    S3_USD_PER_PUT, SQS_USD_PER_REQUEST, VM_BILLING_QUANTUM, VM_MINIMUM_BILLED,
};
