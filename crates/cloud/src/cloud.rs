//! The cloud component: VM and Lambda lifecycles wired to the fabric and
//! the billing ledger.

use std::cell::RefCell;
use std::rc::Rc;

use splitserve_des::{Dist, Fabric, LinkId, Sim, SimDuration, SimTime};

use crate::billing::{Category, Charge, Ledger};
use crate::coldstart::{ColdStartPolicy, ColdStartSpec, PoolDecision, PoolEvent, PoolStats, WarmPool};
use crate::instance::InstanceType;
use crate::pricing;

/// Memory size assumed for the containers pre-warmed at simulation start
/// (the paper's experiments run 1 536 MB executors).
pub const PREWARMED_LAMBDA_MB: u64 = 1_536;

/// Identifies a VM within a [`Cloud`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(u64);

/// Identifies a Lambda container within a [`Cloud`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LambdaId(u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

impl std::fmt::Display for LambdaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda-{}", self.0)
    }
}

/// VM lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Requested, still booting.
    Booting,
    /// Ready to run executors; billing accrues.
    Running,
    /// Terminated; billing finalized.
    Terminated,
}

/// Lambda lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LambdaState {
    /// Invoked, container starting.
    Starting,
    /// Running user code; billing accrues; lifetime clock ticking.
    Running,
    /// Returned gracefully; container parked in the warm pool.
    Released,
    /// Hit the platform's hard lifetime limit and was destroyed.
    Killed,
}

/// Tunable knobs of the simulated cloud. Defaults reflect the measurements
/// the paper relies on: ~2 minute VM boots, ~100 ms warm Lambda starts, the
/// 15-minute Lambda lifetime, and Lambda network bandwidth proportional to
/// memory with noticeable jitter.
#[derive(Debug, Clone)]
pub struct CloudSpec {
    /// VM boot delay in seconds.
    pub vm_boot: Dist,
    /// Warm-start delay for Lambdas in seconds.
    pub lambda_warm_start: Dist,
    /// Cold-start delay for Lambdas in seconds.
    pub lambda_cold_start: Dist,
    /// Hard kill timer per Lambda invocation.
    pub lambda_lifetime: SimDuration,
    /// Network bandwidth (bytes/s) of a Lambda at the maximum memory size;
    /// scales linearly down with smaller allocations.
    pub lambda_net_bytes_per_sec_at_max: f64,
    /// Per-container multiplicative jitter on Lambda bandwidth
    /// ("unreliable and proportional to memory", §5.2).
    pub lambda_net_jitter: Dist,
    /// Containers pre-warmed at simulation start (the paper's premise is
    /// warm-start autoscaling).
    pub prewarmed_lambdas: usize,
    /// Cold-start/keepalive policy governing the warm pool. The default is
    /// [`ColdStartSpec::fixed_secs`]`(900)` — a 15-minute idle window
    /// matching observed AWS behaviour; digest-pinned suites opt into the
    /// legacy infinite pool with [`ColdStartSpec::forever`].
    pub coldstart: ColdStartSpec,
}

impl Default for CloudSpec {
    fn default() -> Self {
        CloudSpec {
            vm_boot: Dist::normal(110.0, 15.0).clamped(60.0, 300.0),
            lambda_warm_start: Dist::normal(0.15, 0.05).clamped(0.05, 0.6),
            lambda_cold_start: Dist::log_normal_mean_sd(2.5, 1.0).clamped(0.8, 12.0),
            lambda_lifetime: pricing::LAMBDA_LIFETIME,
            // ~600 Mbps at 3 008 MB per the "Peeking Behind the Curtains"
            // measurements the paper cites.
            lambda_net_bytes_per_sec_at_max: 600.0e6 / 8.0,
            lambda_net_jitter: Dist::log_normal_mean_sd(1.0, 0.25).clamped(0.3, 2.0),
            prewarmed_lambdas: 1_024,
            coldstart: ColdStartSpec::fixed_secs(900),
        }
    }
}

#[derive(Debug)]
struct Vm {
    itype: InstanceType,
    state: VmState,
    nic: LinkId,
    ebs: LinkId,
    started_at: Option<SimTime>,
}

/// Callback fired when the platform's lifetime limit kills a Lambda.
type KillCallback = Box<dyn FnOnce(&mut Sim, LambdaId)>;

struct Lambda {
    memory_mb: u64,
    func: u32,
    state: LambdaState,
    nic: LinkId,
    started_at: Option<SimTime>,
    kill_event: Option<splitserve_des::EventId>,
    on_killed: Option<KillCallback>,
}

struct Inner {
    spec: CloudSpec,
    vms: Vec<Vm>,
    lambdas: Vec<Lambda>,
    pool: WarmPool,
    ledger: Ledger,
}

/// Cloneable handle to the simulated cloud.
///
/// # Examples
///
/// ```
/// use splitserve_cloud::{Cloud, CloudSpec, M4_LARGE};
/// use splitserve_des::{Fabric, Sim};
///
/// let mut sim = Sim::new(0);
/// let cloud = Cloud::new(CloudSpec::default(), Fabric::new());
/// let vm = cloud.provision_vm_ready(&mut sim, M4_LARGE);
/// assert_eq!(cloud.vm_cores(vm), 2);
/// ```
#[derive(Clone)]
pub struct Cloud {
    inner: Rc<RefCell<Inner>>,
    fabric: Fabric,
}

impl std::fmt::Debug for Cloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Cloud")
            .field("vms", &inner.vms.len())
            .field("lambdas", &inner.lambdas.len())
            .field("warm_pool", &inner.pool.warm_len())
            .field("policy", &inner.pool.policy_name())
            .field("total_cost", &inner.ledger.total())
            .finish()
    }
}

impl Cloud {
    /// Creates a cloud over an existing fabric, building the cold-start
    /// policy from `spec.coldstart`.
    pub fn new(spec: CloudSpec, fabric: Fabric) -> Self {
        let policy = spec.coldstart.build();
        Self::with_policy(spec, fabric, policy)
    }

    /// Creates a cloud running a caller-supplied [`ColdStartPolicy`] —
    /// the plug-in point for policies beyond the built-in
    /// [`ColdStartSpec`] variants.
    pub fn with_policy(spec: CloudSpec, fabric: Fabric, policy: Box<dyn ColdStartPolicy>) -> Self {
        let pool = WarmPool::new(policy, spec.prewarmed_lambdas, PREWARMED_LAMBDA_MB);
        Cloud {
            inner: Rc::new(RefCell::new(Inner {
                spec,
                vms: Vec::new(),
                lambdas: Vec::new(),
                pool,
                ledger: Ledger::new(),
            })),
            fabric,
        }
    }

    /// The fabric this cloud places links on.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    // ----- VMs -------------------------------------------------------

    /// Requests a new VM. `on_ready` fires after the sampled boot delay.
    /// Billing accrues from readiness until [`Cloud::terminate_vm`].
    pub fn request_vm(
        &self,
        sim: &mut Sim,
        itype: InstanceType,
        on_ready: impl FnOnce(&mut Sim, VmId) + 'static,
    ) -> VmId {
        let boot_secs = {
            let inner = self.inner.borrow();
            inner.spec.vm_boot.clone()
        }
        .sample(sim.rng());
        let id = self.add_vm(itype, VmState::Booting);
        let cloud = self.clone();
        sim.schedule_in(SimDuration::from_secs_f64(boot_secs), move |sim| {
            let still_wanted = {
                let mut inner = cloud.inner.borrow_mut();
                let vm = &mut inner.vms[id.0 as usize];
                if vm.state == VmState::Booting {
                    vm.state = VmState::Running;
                    vm.started_at = Some(sim.now());
                    true
                } else {
                    false // terminated while booting
                }
            };
            if still_wanted {
                on_ready(sim, id);
            }
        });
        id
    }

    /// Provisions a VM that is *already running* at the current instant —
    /// used for the cores a job finds free on arrival. Billing accrues from
    /// now.
    pub fn provision_vm_ready(&self, sim: &mut Sim, itype: InstanceType) -> VmId {
        let id = self.add_vm(itype, VmState::Running);
        self.inner.borrow_mut().vms[id.0 as usize].started_at = Some(sim.now());
        id
    }

    fn add_vm(&self, itype: InstanceType, state: VmState) -> VmId {
        let nic = self.fabric.add_link(
            itype.net_bytes_per_sec,
            format!("{}-nic", itype.name),
        );
        let ebs = self.fabric.add_link(
            itype.ebs_bytes_per_sec,
            format!("{}-ebs", itype.name),
        );
        let mut inner = self.inner.borrow_mut();
        let id = VmId(inner.vms.len() as u64);
        inner.vms.push(Vm {
            itype,
            state,
            nic,
            ebs,
            started_at: None,
        });
        id
    }

    /// Terminates a VM and finalizes its bill (per-second, 60 s minimum).
    /// Terminating a still-booting VM cancels it free of charge.
    ///
    /// # Panics
    ///
    /// Panics if the VM was already terminated.
    pub fn terminate_vm(&self, sim: &mut Sim, id: VmId) {
        let mut inner = self.inner.borrow_mut();
        let now = sim.now();
        let vm = &mut inner.vms[id.0 as usize];
        assert_ne!(vm.state, VmState::Terminated, "double terminate of {id}");
        let charge = match (vm.state, vm.started_at) {
            (VmState::Running, Some(start)) => {
                Some(pricing::vm_cost(&vm.itype, now.saturating_since(start)))
            }
            _ => None,
        };
        vm.state = VmState::Terminated;
        let name = vm.itype.name;
        if let Some(usd) = charge {
            inner
                .ledger
                .charge(now, Category::VmCompute, usd, format!("{id} {name}"));
        }
    }

    /// The VM's lifecycle state.
    pub fn vm_state(&self, id: VmId) -> VmState {
        self.inner.borrow().vms[id.0 as usize].state
    }

    /// The VM's instance type.
    pub fn vm_type(&self, id: VmId) -> InstanceType {
        self.inner.borrow().vms[id.0 as usize].itype.clone()
    }

    /// Number of vCPUs (executor cores) on the VM.
    pub fn vm_cores(&self, id: VmId) -> u32 {
        self.inner.borrow().vms[id.0 as usize].itype.vcpus
    }

    /// The VM's network link.
    pub fn vm_nic(&self, id: VmId) -> LinkId {
        self.inner.borrow().vms[id.0 as usize].nic
    }

    /// The VM's dedicated EBS (disk) link.
    pub fn vm_ebs(&self, id: VmId) -> LinkId {
        self.inner.borrow().vms[id.0 as usize].ebs
    }

    // ----- Lambdas ---------------------------------------------------

    /// Invokes a Lambda with `memory_mb` of memory.
    ///
    /// `on_ready` fires after a warm or cold start depending on pool state;
    /// `on_killed` fires if the container hits the platform lifetime limit
    /// before [`Cloud::release_lambda`] is called. The invocation fee is
    /// charged immediately; compute is billed on release/kill at 100 ms
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `memory_mb` exceeds the platform maximum (3 008 MB).
    pub fn invoke_lambda(
        &self,
        sim: &mut Sim,
        memory_mb: u64,
        on_ready: impl FnOnce(&mut Sim, LambdaId) + 'static,
        on_killed: impl FnOnce(&mut Sim, LambdaId) + 'static,
    ) -> LambdaId {
        self.invoke_lambda_for(sim, 0, memory_mb, on_ready, on_killed)
    }

    /// [`Cloud::invoke_lambda`] with an explicit function identity. The
    /// warm pool is shared across functions (any parked container serves
    /// any function, matching container-fungible platforms), but per-func
    /// policies — notably the hybrid histogram — key their idle-time
    /// statistics and prewarm windows on `func`.
    pub fn invoke_lambda_for(
        &self,
        sim: &mut Sim,
        func: u32,
        memory_mb: u64,
        on_ready: impl FnOnce(&mut Sim, LambdaId) + 'static,
        on_killed: impl FnOnce(&mut Sim, LambdaId) + 'static,
    ) -> LambdaId {
        assert!(
            memory_mb <= pricing::LAMBDA_MAX_MEMORY_MB,
            "lambda memory {memory_mb} MB exceeds platform max"
        );
        let (start_dist, lifetime) = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            inner.ledger.charge(
                now,
                Category::LambdaInvocation,
                pricing::LAMBDA_USD_PER_INVOCATION,
                "invoke",
            );
            // The pool decision is pure virtual-time bookkeeping: exactly
            // one start sample and one jitter sample are drawn per invoke
            // regardless of the warm/cold outcome, so policy choice never
            // shifts the RNG stream or the event queue.
            let warm = inner.pool.invoke(now.as_micros(), func, memory_mb);
            let d = if warm {
                inner.spec.lambda_warm_start.clone()
            } else {
                inner.spec.lambda_cold_start.clone()
            };
            (d, inner.spec.lambda_lifetime)
        };
        let start_secs = start_dist.sample(sim.rng());

        // Bandwidth ∝ memory, with per-container jitter.
        let (bw, jitter) = {
            let inner = self.inner.borrow();
            let base = inner.spec.lambda_net_bytes_per_sec_at_max * memory_mb as f64
                / pricing::LAMBDA_MAX_MEMORY_MB as f64;
            (base, inner.spec.lambda_net_jitter.clone())
        };
        let bw = (bw * jitter.sample(sim.rng())).max(1.0);
        let nic = self.fabric.add_link(bw, format!("lambda-{memory_mb}mb-nic"));

        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = LambdaId(inner.lambdas.len() as u64);
            inner.lambdas.push(Lambda {
                memory_mb,
                func,
                state: LambdaState::Starting,
                nic,
                started_at: None,
                kill_event: None,
                on_killed: Some(Box::new(on_killed)),
            });
            id
        };

        let cloud = self.clone();
        sim.schedule_in(SimDuration::from_secs_f64(start_secs), move |sim| {
            {
                let mut inner = cloud.inner.borrow_mut();
                let lam = &mut inner.lambdas[id.0 as usize];
                if lam.state != LambdaState::Starting {
                    return; // released/aborted before the container came up
                }
                lam.state = LambdaState::Running;
                lam.started_at = Some(sim.now());
            }
            // Arm the platform's hard lifetime kill.
            let cloud2 = cloud.clone();
            let kill = sim.schedule_in(lifetime, move |sim| cloud2.kill_lambda(sim, id));
            cloud.inner.borrow_mut().lambdas[id.0 as usize].kill_event = Some(kill);
            on_ready(sim, id);
        });
        id
    }

    fn kill_lambda(&self, sim: &mut Sim, id: LambdaId) {
        let cb = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            let lam = &mut inner.lambdas[id.0 as usize];
            if lam.state != LambdaState::Running {
                return;
            }
            lam.state = LambdaState::Killed;
            let runtime = now.saturating_since(lam.started_at.expect("running lambda started"));
            let usd = pricing::lambda_compute_cost(lam.memory_mb, runtime);
            let cb = lam.on_killed.take();
            inner
                .ledger
                .charge(now, Category::LambdaCompute, usd, format!("{id} killed"));
            cb
        };
        if let Some(cb) = cb {
            cb(sim, id);
        }
    }

    /// Gracefully releases a Lambda: finalizes its bill and parks the
    /// container in the warm pool. Releasing an already-killed container is
    /// a no-op (the kill callback already ran).
    pub fn release_lambda(&self, sim: &mut Sim, id: LambdaId) {
        let kill_event = {
            let mut inner = self.inner.borrow_mut();
            let now = sim.now();
            let lam = &mut inner.lambdas[id.0 as usize];
            match lam.state {
                LambdaState::Running => {
                    lam.state = LambdaState::Released;
                    let runtime =
                        now.saturating_since(lam.started_at.expect("running lambda started"));
                    let usd = pricing::lambda_compute_cost(lam.memory_mb, runtime);
                    let ev = lam.kill_event.take();
                    let mem = lam.memory_mb;
                    let func = lam.func;
                    inner.ledger.charge(
                        now,
                        Category::LambdaCompute,
                        usd,
                        format!("{id} {mem}MB released"),
                    );
                    inner.pool.release(now.as_micros(), func, mem);
                    ev
                }
                LambdaState::Starting => {
                    // Released before it even started: bill one quantum.
                    lam.state = LambdaState::Released;
                    let usd = pricing::lambda_compute_cost(
                        lam.memory_mb,
                        pricing::LAMBDA_BILLING_QUANTUM,
                    );
                    let mem = lam.memory_mb;
                    let func = lam.func;
                    inner.ledger.charge(
                        now,
                        Category::LambdaCompute,
                        usd,
                        format!("{id} aborted"),
                    );
                    inner.pool.release(now.as_micros(), func, mem);
                    None
                }
                LambdaState::Released | LambdaState::Killed => None,
            }
        };
        if let Some(ev) = kill_event {
            sim.cancel(ev);
        }
    }

    /// The Lambda's lifecycle state.
    pub fn lambda_state(&self, id: LambdaId) -> LambdaState {
        self.inner.borrow().lambdas[id.0 as usize].state
    }

    /// The Lambda's network link.
    pub fn lambda_nic(&self, id: LambdaId) -> LinkId {
        self.inner.borrow().lambdas[id.0 as usize].nic
    }

    /// The Lambda's memory allocation in MB.
    pub fn lambda_memory_mb(&self, id: LambdaId) -> u64 {
        self.inner.borrow().lambdas[id.0 as usize].memory_mb
    }

    /// The fraction of one vCPU this Lambda receives.
    pub fn lambda_cpu_share(&self, id: LambdaId) -> f64 {
        pricing::lambda_cpu_share(self.lambda_memory_mb(id))
    }

    /// When this Lambda became ready, if it has.
    pub fn lambda_started_at(&self, id: LambdaId) -> Option<SimTime> {
        self.inner.borrow().lambdas[id.0 as usize].started_at
    }

    /// Counts of (warm, cold) starts so far.
    pub fn start_counts(&self) -> (u64, u64) {
        let s = self.inner.borrow().pool.stats();
        (s.warm_starts, s.cold_starts)
    }

    /// Aggregate warm-pool statistics under the active cold-start policy.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.borrow().pool.stats()
    }

    /// The active cold-start policy's label.
    pub fn policy_name(&self) -> &'static str {
        self.inner.borrow().pool.policy_name()
    }

    /// Containers currently parked warm.
    pub fn warm_pool_len(&self) -> usize {
        self.inner.borrow().pool.warm_len()
    }

    /// Aggregate reserved memory of the warm pool, in MB.
    pub fn warm_pool_memory_mb(&self) -> u64 {
        self.inner.borrow().pool.warm_memory_mb()
    }

    /// The warm-pool input stream so far — what the policy oracle replays.
    pub fn pool_inputs(&self) -> Vec<PoolEvent> {
        self.inner.borrow().pool.inputs().to_vec()
    }

    /// The warm-pool decision log so far — what the policy oracle must
    /// reproduce bit-for-bit.
    pub fn pool_decisions(&self) -> Vec<PoolDecision> {
        self.inner.borrow().pool.decisions().to_vec()
    }

    /// Sweeps the warm pool to `now` and evicts everything still parked,
    /// charging its idle memory — called by [`Cloud::shutdown_all`]; safe
    /// to call again (idempotent).
    pub fn finalize_pool(&self, now: SimTime) {
        self.inner.borrow_mut().pool.finalize(now.as_micros());
    }

    // ----- Billing ---------------------------------------------------

    /// Records an arbitrary charge (used by the storage services).
    pub fn charge(&self, at: SimTime, category: Category, usd: f64, note: impl Into<String>) {
        self.inner.borrow_mut().ledger.charge(at, category, usd, note);
    }

    /// Total *finalized* spend so far.
    pub fn total_cost(&self) -> f64 {
        self.inner.borrow().ledger.total()
    }

    /// Finalized spend in one category.
    pub fn cost_for(&self, category: Category) -> f64 {
        self.inner.borrow().ledger.total_for(category)
    }

    /// Per-category rollup of finalized spend.
    pub fn cost_by_category(&self) -> Vec<(Category, f64)> {
        self.inner.borrow().ledger.by_category()
    }

    /// All individual charges recorded so far.
    pub fn ledger_charges(&self) -> Vec<Charge> {
        self.inner.borrow().ledger.charges().to_vec()
    }

    /// Finalized spend *plus* the accrued cost of everything still running
    /// at `now` — the number an experiment reads at job completion.
    pub fn accrued_cost(&self, now: SimTime) -> f64 {
        let inner = self.inner.borrow();
        let mut total = inner.ledger.total();
        for vm in &inner.vms {
            if vm.state == VmState::Running {
                if let Some(start) = vm.started_at {
                    total += pricing::vm_cost(&vm.itype, now.saturating_since(start));
                }
            }
        }
        for lam in &inner.lambdas {
            if lam.state == LambdaState::Running {
                if let Some(start) = lam.started_at {
                    total +=
                        pricing::lambda_compute_cost(lam.memory_mb, now.saturating_since(start));
                }
            }
        }
        total
    }

    /// Terminates every running VM and releases every running Lambda,
    /// finalizing all bills — called at the end of an experiment.
    pub fn shutdown_all(&self, sim: &mut Sim) {
        let vm_ids: Vec<VmId> = {
            let inner = self.inner.borrow();
            (0..inner.vms.len() as u64)
                .map(VmId)
                .filter(|id| inner.vms[id.0 as usize].state != VmState::Terminated)
                .collect()
        };
        for id in vm_ids {
            self.terminate_vm(sim, id);
        }
        let lambda_ids: Vec<LambdaId> = {
            let inner = self.inner.borrow();
            (0..inner.lambdas.len() as u64)
                .map(LambdaId)
                .filter(|id| {
                    matches!(
                        inner.lambdas[id.0 as usize].state,
                        LambdaState::Running | LambdaState::Starting
                    )
                })
                .collect()
        };
        for id in lambda_ids {
            self.release_lambda(sim, id);
        }
        self.finalize_pool(sim.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{M4_LARGE, M4_XLARGE};
    use std::cell::Cell;

    fn quiet_spec() -> CloudSpec {
        CloudSpec {
            vm_boot: Dist::constant(110.0),
            lambda_warm_start: Dist::constant(0.1),
            lambda_cold_start: Dist::constant(3.0),
            lambda_net_jitter: Dist::constant(1.0),
            ..CloudSpec::default()
        }
    }

    #[test]
    fn vm_boot_delay_applies() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let ready_at = Rc::new(Cell::new(-1.0));
        let r = Rc::clone(&ready_at);
        cloud.request_vm(&mut sim, M4_LARGE, move |sim, _id| {
            r.set(sim.now().as_secs_f64());
        });
        sim.run();
        assert_eq!(ready_at.get(), 110.0);
    }

    #[test]
    fn vm_billing_from_ready_to_terminate_with_minimum() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let vm = cloud.provision_vm_ready(&mut sim, M4_LARGE);
        // Terminate after 30 s → 60 s minimum billed.
        let c = cloud.clone();
        sim.schedule_in(SimDuration::from_secs(30), move |sim| {
            c.terminate_vm(sim, vm);
        });
        sim.run();
        let expect = 0.10 / 60.0; // one minute of m4.large
        assert!((cloud.total_cost() - expect).abs() < 1e-12);
    }

    #[test]
    fn terminate_while_booting_is_free() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let fired = Rc::new(Cell::new(false));
        let f = Rc::clone(&fired);
        let vm = cloud.request_vm(&mut sim, M4_XLARGE, move |_, _| f.set(true));
        let c = cloud.clone();
        sim.schedule_in(SimDuration::from_secs(10), move |sim| {
            c.terminate_vm(sim, vm);
        });
        sim.run();
        assert!(!fired.get(), "on_ready must not fire after cancel");
        assert_eq!(cloud.total_cost(), 0.0);
        assert_eq!(cloud.vm_state(vm), VmState::Terminated);
    }

    #[test]
    fn lambda_warm_start_then_release_bills_quantum() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let ready_at = Rc::new(Cell::new(-1.0));
        let r = Rc::clone(&ready_at);
        let cloud2 = cloud.clone();
        cloud.invoke_lambda(
            &mut sim,
            1_536,
            move |sim, id| {
                r.set(sim.now().as_secs_f64());
                // run 0.25 s then release
                let c = cloud2.clone();
                sim.schedule_in(SimDuration::from_millis(250), move |sim| {
                    c.release_lambda(sim, id);
                });
            },
            |_, _| panic!("must not be killed"),
        );
        sim.run();
        assert!((ready_at.get() - 0.1).abs() < 1e-9);
        // 0.25 s rounds to 0.3 s of 1.5 GB + invocation fee.
        let expect = pricing::LAMBDA_USD_PER_GB_SEC * 1.5 * 0.3 + pricing::LAMBDA_USD_PER_INVOCATION;
        assert!(
            (cloud.total_cost() - expect).abs() < 1e-12,
            "got {} expect {expect}",
            cloud.total_cost()
        );
    }

    #[test]
    fn lambda_lifetime_kill_fires_callback() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let killed_at = Rc::new(Cell::new(-1.0));
        let k = Rc::clone(&killed_at);
        cloud.invoke_lambda(
            &mut sim,
            1_536,
            |_, _| {}, // never released
            move |sim, _| k.set(sim.now().as_secs_f64()),
        );
        sim.run();
        // ready at 0.1 s + 900 s lifetime
        assert!((killed_at.get() - 900.1).abs() < 1e-6);
    }

    #[test]
    fn release_cancels_lifetime_kill() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let cloud2 = cloud.clone();
        cloud.invoke_lambda(
            &mut sim,
            1_536,
            move |sim, id| {
                let c = cloud2.clone();
                sim.schedule_in(SimDuration::from_secs(10), move |sim| {
                    c.release_lambda(sim, id);
                });
            },
            |_, _| panic!("kill must be cancelled by release"),
        );
        sim.run();
        assert!(sim.now().as_secs_f64() < 900.0);
    }

    #[test]
    fn warm_pool_exhaustion_causes_cold_starts() {
        let mut sim = Sim::new(0);
        let spec = CloudSpec {
            prewarmed_lambdas: 2,
            ..quiet_spec()
        };
        let cloud = Cloud::new(spec, Fabric::new());
        let mut ready = Vec::new();
        for _ in 0..3 {
            let r = Rc::new(Cell::new(-1.0));
            ready.push(Rc::clone(&r));
            cloud.invoke_lambda(
                &mut sim,
                1_536,
                move |sim, _| r.set(sim.now().as_secs_f64()),
                |_, _| {},
            );
        }
        sim.run_until(SimTime::from_secs(30));
        assert!((ready[0].get() - 0.1).abs() < 1e-9);
        assert!((ready[1].get() - 0.1).abs() < 1e-9);
        assert!((ready[2].get() - 3.0).abs() < 1e-9, "third start is cold");
        assert_eq!(cloud.start_counts(), (2, 1));
    }

    #[test]
    fn released_lambda_rewarms_pool() {
        let mut sim = Sim::new(0);
        let spec = CloudSpec {
            prewarmed_lambdas: 1,
            ..quiet_spec()
        };
        let cloud = Cloud::new(spec, Fabric::new());
        let cloud2 = cloud.clone();
        cloud.invoke_lambda(
            &mut sim,
            1_536,
            move |sim, id| {
                let c = cloud2.clone();
                sim.schedule_in(SimDuration::from_secs(1), move |sim| {
                    c.release_lambda(sim, id);
                    // Re-invoke: should be warm again.
                    let c2 = c.clone();
                    c.invoke_lambda(sim, 1_536, move |sim2, id2| {
                        c2.release_lambda(sim2, id2);
                    }, |_, _| {});
                });
            },
            |_, _| {},
        );
        sim.run();
        assert_eq!(cloud.start_counts(), (2, 0));
    }

    #[test]
    fn lambda_bandwidth_scales_with_memory() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let big = cloud.invoke_lambda(&mut sim, 3_008, |_, _| {}, |_, _| {});
        let small = cloud.invoke_lambda(&mut sim, 752, |_, _| {}, |_, _| {});
        let f = cloud.fabric();
        let bw_big = f.link_capacity(cloud.lambda_nic(big));
        let bw_small = f.link_capacity(cloud.lambda_nic(small));
        assert!((bw_big / bw_small - 4.0).abs() < 1e-6);
    }

    #[test]
    fn accrued_cost_counts_running_resources() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        cloud.provision_vm_ready(&mut sim, M4_LARGE);
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(cloud.total_cost(), 0.0, "nothing finalized yet");
        let accrued = cloud.accrued_cost(sim.now());
        let expect = 0.10 / 3600.0 * 120.0;
        assert!((accrued - expect).abs() < 1e-12);
    }

    #[test]
    fn shutdown_all_finalizes_everything() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        cloud.provision_vm_ready(&mut sim, M4_LARGE);
        cloud.invoke_lambda(&mut sim, 1_536, |_, _| {}, |_, _| {});
        sim.run_until(SimTime::from_secs(10));
        cloud.shutdown_all(&mut sim);
        sim.run();
        assert!(cloud.total_cost() > 0.0);
        let accrued = cloud.accrued_cost(sim.now());
        assert!((accrued - cloud.total_cost()).abs() < 1e-12, "nothing left accruing");
    }

    #[test]
    #[should_panic(expected = "exceeds platform max")]
    fn oversized_lambda_rejected() {
        let mut sim = Sim::new(0);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        cloud.invoke_lambda(&mut sim, 4_096, |_, _| {}, |_, _| {});
    }

    fn all_policy_specs() -> Vec<ColdStartSpec> {
        vec![
            ColdStartSpec::forever(),
            ColdStartSpec::fixed_secs(60),
            ColdStartSpec::UnloadOnPressure { cap_mb: 8_192 },
            ColdStartSpec::HybridHistogram(crate::coldstart::HybridHistogramSpec::default()),
        ]
    }

    /// A platform-killed container is destroyed, not parked: under every
    /// policy the next invoke after a lifetime kill must be cold, and the
    /// kill must leave no trace in the warm pool.
    #[test]
    fn killed_container_never_reenters_warm_pool() {
        for coldstart in all_policy_specs() {
            let name = coldstart.name();
            let mut sim = Sim::new(0);
            let spec = CloudSpec {
                prewarmed_lambdas: 0,
                lambda_lifetime: SimDuration::from_secs(5),
                coldstart,
                ..quiet_spec()
            };
            let cloud = Cloud::new(spec, Fabric::new());
            let killed = Rc::new(Cell::new(false));
            let k = Rc::clone(&killed);
            cloud.invoke_lambda(
                &mut sim,
                1_536,
                |_, _| {}, // never released → lifetime kill at ~8 s
                move |_, _| k.set(true),
            );
            sim.run_until(SimTime::from_secs(20));
            assert!(killed.get(), "[{name}] lifetime kill must fire");
            assert_eq!(
                cloud.warm_pool_len(),
                0,
                "[{name}] killed container re-entered the warm pool"
            );
            cloud.invoke_lambda(&mut sim, 1_536, |_, _| {}, |_, _| {});
            sim.run_until(SimTime::from_secs(40));
            assert_eq!(
                cloud.start_counts(),
                (0, 2),
                "[{name}] start after a kill must be cold"
            );
        }
    }

    /// An invocation aborted while Starting parks its container; if that
    /// parked container then *expires* before the start event fires, the
    /// pending `on_ready` must be dropped (the Lambda is Released, not
    /// resurrected) and the original invoke must stay counted exactly
    /// once — no double-counted start, no span from beyond the grave.
    #[test]
    fn eviction_mid_on_ready_does_not_double_count_starts() {
        let mut sim = Sim::new(0);
        let spec = CloudSpec {
            prewarmed_lambdas: 0,
            coldstart: ColdStartSpec::Fixed {
                keepalive_us: 1_000_000,
            },
            ..quiet_spec()
        };
        let cloud = Cloud::new(spec, Fabric::new());
        let ready_fired = Rc::new(Cell::new(0u32));
        let r = Rc::clone(&ready_fired);
        // Cold start takes 3 s; abort at 0.5 s re-parks the container with
        // a 1 s keepalive, so it expires at 1.5 s — before the start event
        // at 3 s.
        let c = cloud.clone();
        let id = cloud.invoke_lambda(
            &mut sim,
            1_536,
            move |_, _| r.set(r.get() + 1),
            |_, _| panic!("never killed"),
        );
        sim.schedule_in(SimDuration::from_millis(500), move |sim| {
            c.release_lambda(sim, id);
        });
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(cloud.warm_pool_len(), 1, "aborted container parked");
        // Next invoke at 2 s: the parked container expired at 1.5 s.
        let r2 = Rc::clone(&ready_fired);
        let c2 = cloud.clone();
        cloud.invoke_lambda(
            &mut sim,
            1_536,
            move |sim, id2| {
                r2.set(r2.get() + 1);
                c2.release_lambda(sim, id2);
            },
            |_, _| panic!("never killed"),
        );
        sim.run();
        assert_eq!(ready_fired.get(), 1, "only the live invoke's on_ready fires");
        assert_eq!(
            cloud.start_counts(),
            (0, 2),
            "aborted + evicted invoke still counts exactly once, as cold"
        );
        let stats = cloud.pool_stats();
        assert_eq!(stats.evicted_expired, 1);
        assert_eq!(cloud.lambda_state(id), LambdaState::Released);
    }

    /// The abort path (release while Starting) parks a container that a
    /// back-to-back invoke can reuse warm — and reuse must not re-fire
    /// the aborted invocation's `on_ready`.
    #[test]
    fn abort_then_immediate_reinvoke_is_warm_without_resurrection() {
        let mut sim = Sim::new(0);
        let spec = CloudSpec {
            prewarmed_lambdas: 0,
            ..quiet_spec()
        };
        let cloud = Cloud::new(spec, Fabric::new());
        let first_ready = Rc::new(Cell::new(false));
        let fr = Rc::clone(&first_ready);
        let c = cloud.clone();
        let id = cloud.invoke_lambda(
            &mut sim,
            1_536,
            move |_, _| fr.set(true),
            |_, _| {},
        );
        sim.schedule_in(SimDuration::from_millis(100), move |sim| {
            c.release_lambda(sim, id);
            // Warm re-invoke 100 ms after the abort parked the container.
            c.invoke_lambda(sim, 1_536, |_, _| {}, |_, _| {});
        });
        sim.run_until(SimTime::from_secs(10));
        assert!(!first_ready.get(), "aborted invoke must not come up");
        assert_eq!(cloud.start_counts(), (1, 1), "abort re-warms the pool");
    }
}
