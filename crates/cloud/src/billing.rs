//! The billing ledger: every dollar the simulated tenant spends lands here.

use std::collections::BTreeMap;
use std::fmt;

use splitserve_des::SimTime;

/// What a charge was for. Categories mirror the cost components the paper
/// reports: VM time, Lambda time, Lambda invocations, and storage-service
/// requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// EC2 instance run time.
    VmCompute,
    /// Lambda GB-seconds.
    LambdaCompute,
    /// Lambda per-request fee.
    LambdaInvocation,
    /// S3 PUT/POST/LIST requests.
    S3Put,
    /// S3 GET requests.
    S3Get,
    /// SQS send/receive requests.
    SqsRequest,
    /// Storage capacity charges (S3/EBS GB-months, prorated).
    Storage,
    /// Anything else.
    Other,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::VmCompute => "vm-compute",
            Category::LambdaCompute => "lambda-compute",
            Category::LambdaInvocation => "lambda-invocation",
            Category::S3Put => "s3-put",
            Category::S3Get => "s3-get",
            Category::SqsRequest => "sqs-request",
            Category::Storage => "storage",
            Category::Other => "other",
        };
        f.write_str(s)
    }
}

/// One ledger line.
#[derive(Debug, Clone, PartialEq)]
pub struct Charge {
    /// When the charge was finalized.
    pub at: SimTime,
    /// What kind of spend.
    pub category: Category,
    /// Amount in USD.
    pub usd: f64,
    /// Human-readable description (resource id etc.).
    pub note: String,
}

/// An append-only record of spend with per-category rollups.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    charges: Vec<Charge>,
    totals: BTreeMap<Category, f64>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records a charge.
    ///
    /// # Panics
    ///
    /// Panics if `usd` is negative or not finite — refunds don't exist in
    /// this model and NaNs would silently poison totals.
    pub fn charge(&mut self, at: SimTime, category: Category, usd: f64, note: impl Into<String>) {
        assert!(usd.is_finite() && usd >= 0.0, "invalid charge: {usd}");
        *self.totals.entry(category).or_insert(0.0) += usd;
        self.charges.push(Charge {
            at,
            category,
            usd,
            note: note.into(),
        });
    }

    /// Total spend across all categories.
    pub fn total(&self) -> f64 {
        self.totals.values().sum()
    }

    /// Spend in one category.
    pub fn total_for(&self, category: Category) -> f64 {
        self.totals.get(&category).copied().unwrap_or(0.0)
    }

    /// Per-category rollup, in category order.
    pub fn by_category(&self) -> Vec<(Category, f64)> {
        self.totals.iter().map(|(c, v)| (*c, *v)).collect()
    }

    /// Every individual charge, in the order recorded.
    pub fn charges(&self) -> &[Charge] {
        &self.charges
    }

    /// Number of charges recorded.
    pub fn len(&self) -> usize {
        self.charges.len()
    }

    /// `true` when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.charges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_per_category() {
        let mut l = Ledger::new();
        l.charge(SimTime::ZERO, Category::VmCompute, 1.0, "vm-1");
        l.charge(SimTime::from_secs(5), Category::VmCompute, 2.0, "vm-2");
        l.charge(SimTime::from_secs(6), Category::S3Get, 0.5, "get");
        assert_eq!(l.total_for(Category::VmCompute), 3.0);
        assert_eq!(l.total_for(Category::S3Get), 0.5);
        assert_eq!(l.total_for(Category::SqsRequest), 0.0);
        assert_eq!(l.total(), 3.5);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn rollup_is_ordered_and_complete() {
        let mut l = Ledger::new();
        l.charge(SimTime::ZERO, Category::S3Put, 0.1, "");
        l.charge(SimTime::ZERO, Category::LambdaCompute, 0.2, "");
        let roll = l.by_category();
        assert_eq!(roll.len(), 2);
        assert_eq!(roll[0].0, Category::LambdaCompute);
        assert_eq!(roll[1].0, Category::S3Put);
    }

    #[test]
    #[should_panic(expected = "invalid charge")]
    fn negative_charge_panics() {
        Ledger::new().charge(SimTime::ZERO, Category::Other, -1.0, "refund");
    }

    #[test]
    fn empty_ledger_reports_zero() {
        let l = Ledger::new();
        assert!(l.is_empty());
        assert_eq!(l.total(), 0.0);
        assert!(l.charges().is_empty());
    }
}
