//! The cold-start / keepalive policy plane.
//!
//! The paper's launching facility hinges on the ~100 ms-warm vs
//! multi-second-cold Lambda gap. Production FaaS platforms do not hold
//! containers warm forever: they run a *keepalive policy* that trades
//! cold-start latency against wasted warm memory. This module makes that
//! trade a pluggable decision: a [`WarmPool`] automaton owns the warm
//! container set, and a [`ColdStartPolicy`] is consulted at its three
//! decision points:
//!
//! - **invoke** — a container is taken from the pool (warm) or not (cold);
//!   the policy observes the function's idle gap either way.
//! - **release** — a returning container is parked; the policy picks its
//!   keepalive window (and, optionally, a prewarm window instead).
//! - **time-advance** — the lazy sweep run before every decision: expired
//!   containers are evicted, due prewarms materialize, and the aggregate
//!   memory cap is enforced. No simulator events are scheduled — the
//!   whole plane is virtual-time bookkeeping, so enabling any policy
//!   never perturbs the event queue or the RNG stream.
//!
//! Every decision is appended to a [`PoolDecision`] log and every input
//! to a [`PoolEvent`] log, so an engine-free *oracle* (a second,
//! independent implementation of the automaton) can replay the input
//! stream and must reproduce the decisions bit-for-bit — the
//! differential test in `crates/cloud/tests/policy_oracle.rs`.
//!
//! # The automaton, precisely
//!
//! State: a set of warm entries `(cid, func, memory_mb, idle_since_us,
//! expires_us)` plus at most one pending prewarm per function. `cid` is a
//! monotone counter assigned at every insertion (seeded prewarmed
//! containers take `0..n`). All rules below are deterministic; ties break
//! on `cid`.
//!
//! `advance_to(now)`:
//! 1. Evict every entry with `expires_us <= now`, ascending by
//!    `(expires_us, cid)` — reason `Expired`, wasted memory charged from
//!    `idle_since_us` to `expires_us`.
//! 2. Materialize every pending prewarm with `ready_us <= now`, ascending
//!    by `(ready_us, func)`: a fresh `cid` is parked at `ready_us` with a
//!    keepalive window asked of the policy (`ParkOrigin::Prewarm`); if its
//!    window already ended it is immediately evicted (reason `Expired`).
//! 3. While the policy caps memory and the warm total exceeds the cap,
//!    evict the LRU entry (minimum `(idle_since_us, cid)`) — reason
//!    `Pressure`, wasted memory charged up to `now`.
//!
//! `invoke(now, func, mem)`: advance, then take the MRU entry (maximum
//! `(idle_since_us, cid)`) if any — warm — else cold. The policy observes
//! `(func, gap, cold)` where `gap` is the time since `func`'s last
//! release (if any). A reused container charges its idle span to the
//! wasted-memory meter too: warmth is paid for in memory-time whether or
//! not it pans out, which is what makes the metric comparable across
//! policies.
//!
//! `release(now, func, mem)`: advance, stamp `func`'s last-release, ask
//! the policy for a keepalive window (`ParkOrigin::Release`) and park a
//! fresh `cid`; then ask for a prewarm window — `Some(p)` replaces the
//! function's pending prewarm with one due at `now + p`. Finally the cap
//! is enforced.
//!
//! `finalize(now)`: advance, then evict everything (reason `Shutdown`,
//! wasted memory up to `now`) and drop pending prewarms.

use splitserve_rt::hash::FastMap;

/// Sentinel keepalive meaning "never expire".
pub const FOREVER_US: u64 = u64::MAX;

/// Why a policy is being asked for a keepalive window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkOrigin {
    /// A running container returned gracefully.
    Release,
    /// A pending prewarm materialized.
    Prewarm,
}

/// A pluggable cold-start/keepalive policy. Implementations must be
/// deterministic pure functions of the call sequence — the differential
/// oracle replays the same sequence against a fresh instance and the
/// decisions must match bit-for-bit.
pub trait ColdStartPolicy: std::fmt::Debug {
    /// Stable label for metrics and artifacts.
    fn name(&self) -> &'static str;

    /// Idle microseconds a container parked at `now_us` survives before
    /// eviction. [`FOREVER_US`] means it never expires; `0` means it is
    /// discarded immediately (the hybrid policy's "shut down now, prewarm
    /// later" arm).
    fn keepalive_us(&mut self, func: u32, now_us: u64, origin: ParkOrigin) -> u64;

    /// Delay after a release at which a *fresh* container should be
    /// warmed for `func`. `None` (the default) disables prewarming.
    fn prewarm_us(&mut self, _func: u32, _now_us: u64) -> Option<u64> {
        None
    }

    /// Aggregate warm-memory cap in MB; exceeding it evicts LRU entries.
    /// `None` (the default) leaves the pool uncapped.
    fn memory_cap_mb(&self) -> Option<u64> {
        None
    }

    /// Observes one invocation of `func`: `idle_gap_us` is the time since
    /// the function's previous release (`None` on its first-ever start)
    /// and `cold` tells whether the pool missed.
    fn record(&mut self, _func: u32, _idle_gap_us: Option<u64>, _cold: bool) {}
}

// ---------------------------------------------------------------------
// Policy configs (cloneable specs) and the three implementations
// ---------------------------------------------------------------------

/// Cloneable policy selection carried by `CloudSpec` (and therefore by
/// `ScenarioSpec` / `TenantFleetConfig`). [`ColdStartSpec::build`] turns
/// it into live policy state; custom policies plug in through
/// [`crate::Cloud::with_policy`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColdStartSpec {
    /// Containers expire after a fixed idle window ([`FOREVER_US`] =
    /// never — the pre-policy-plane model, pinned by the digest suites).
    Fixed {
        /// Idle window in microseconds.
        keepalive_us: u64,
    },
    /// Containers never expire on idleness but the warm pool is capped:
    /// crossing `cap_mb` of aggregate reserved memory evicts LRU.
    UnloadOnPressure {
        /// Aggregate warm-memory cap in MB.
        cap_mb: u64,
    },
    /// The Azure "Serverless in the Wild" hybrid-histogram policy:
    /// per-function idle-time histograms drive the keepalive and prewarm
    /// windows, with a fixed-keepalive fallback while samples are scarce
    /// or the distribution spills out of range.
    HybridHistogram(HybridHistogramSpec),
}

impl ColdStartSpec {
    /// The pre-policy-plane model: infinite keepalive, no cap, no
    /// prewarm. All digest-pinned suites run under this.
    pub fn forever() -> Self {
        ColdStartSpec::Fixed {
            keepalive_us: FOREVER_US,
        }
    }

    /// Fixed keepalive of `secs` seconds.
    pub fn fixed_secs(secs: u64) -> Self {
        ColdStartSpec::Fixed {
            keepalive_us: secs.saturating_mul(1_000_000),
        }
    }

    /// Parses the `SPLITSERVE_COLDSTART`-style selector:
    /// `forever`, `fixed:<secs>`, `pressure:<cap_mb>`, or `hybrid`
    /// (optionally `hybrid:<fallback_secs>`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (s, None),
        };
        let num = |a: Option<&str>, what: &str| -> Result<u64, String> {
            a.ok_or_else(|| format!("{kind} needs :{what}"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {what} in {s:?}: {e}"))
        };
        match kind {
            "forever" => Ok(ColdStartSpec::forever()),
            "fixed" => Ok(ColdStartSpec::fixed_secs(num(arg, "secs")?)),
            "pressure" => Ok(ColdStartSpec::UnloadOnPressure {
                cap_mb: num(arg, "cap_mb")?,
            }),
            "hybrid" => {
                let mut spec = HybridHistogramSpec::default();
                if let Some(a) = arg {
                    spec.fallback_keepalive_us = a
                        .parse::<u64>()
                        .map_err(|e| format!("bad fallback secs in {s:?}: {e}"))?
                        .saturating_mul(1_000_000);
                }
                Ok(ColdStartSpec::HybridHistogram(spec))
            }
            other => Err(format!("unknown cold-start policy {other:?}")),
        }
    }

    /// Builds fresh policy state.
    pub fn build(&self) -> Box<dyn ColdStartPolicy> {
        match self {
            ColdStartSpec::Fixed { keepalive_us } => {
                Box::new(FixedKeepalive::new_us(*keepalive_us))
            }
            ColdStartSpec::UnloadOnPressure { cap_mb } => {
                Box::new(UnloadOnPressure::new(*cap_mb))
            }
            ColdStartSpec::HybridHistogram(spec) => {
                Box::new(HybridHistogram::new(spec.clone()))
            }
        }
    }

    /// The selector string [`ColdStartSpec::parse`] round-trips: stable,
    /// argument-carrying labels for sweep artifacts (`forever`,
    /// `fixed:30`, `pressure:6144`, `hybrid:15`).
    pub fn selector(&self) -> String {
        match self {
            ColdStartSpec::Fixed {
                keepalive_us: FOREVER_US,
            } => "forever".to_string(),
            ColdStartSpec::Fixed { keepalive_us } => {
                format!("fixed:{}", keepalive_us / 1_000_000)
            }
            ColdStartSpec::UnloadOnPressure { cap_mb } => format!("pressure:{cap_mb}"),
            ColdStartSpec::HybridHistogram(spec) => {
                format!("hybrid:{}", spec.fallback_keepalive_us / 1_000_000)
            }
        }
    }

    /// The label [`ColdStartPolicy::name`] of the built policy.
    pub fn name(&self) -> &'static str {
        match self {
            ColdStartSpec::Fixed { .. } => "fixed-keepalive",
            ColdStartSpec::UnloadOnPressure { .. } => "unload-on-pressure",
            ColdStartSpec::HybridHistogram(_) => "hybrid-histogram",
        }
    }
}

/// Fixed idle-window keepalive — AWS Lambda's observed behaviour is
/// roughly a 5–15 minute window; the `CloudSpec` default is 15 minutes.
#[derive(Debug, Clone)]
pub struct FixedKeepalive {
    keepalive_us: u64,
}

impl FixedKeepalive {
    /// Keepalive of `window_us` microseconds.
    pub fn new_us(window_us: u64) -> Self {
        FixedKeepalive {
            keepalive_us: window_us,
        }
    }

    /// Keepalive of `secs` seconds.
    pub fn secs(secs: u64) -> Self {
        Self::new_us(secs.saturating_mul(1_000_000))
    }

    /// Infinite keepalive — byte-identical to the pre-policy warm-pool
    /// counter, the escape hatch every digest-pinned suite uses.
    pub fn forever() -> Self {
        Self::new_us(FOREVER_US)
    }
}

impl ColdStartPolicy for FixedKeepalive {
    fn name(&self) -> &'static str {
        "fixed-keepalive"
    }
    fn keepalive_us(&mut self, _func: u32, _now_us: u64, _origin: ParkOrigin) -> u64 {
        self.keepalive_us
    }
}

/// Infinite keepalive under an aggregate warm-memory cap: the pool only
/// sheds containers when reserved memory crosses `cap_mb`, LRU first.
#[derive(Debug, Clone)]
pub struct UnloadOnPressure {
    cap_mb: u64,
}

impl UnloadOnPressure {
    /// Cap the warm pool at `cap_mb` MB of reserved memory.
    pub fn new(cap_mb: u64) -> Self {
        UnloadOnPressure { cap_mb }
    }
}

impl ColdStartPolicy for UnloadOnPressure {
    fn name(&self) -> &'static str {
        "unload-on-pressure"
    }
    fn keepalive_us(&mut self, _func: u32, _now_us: u64, _origin: ParkOrigin) -> u64 {
        FOREVER_US
    }
    fn memory_cap_mb(&self) -> Option<u64> {
        Some(self.cap_mb)
    }
}

/// Tunables of the [`HybridHistogram`] policy.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridHistogramSpec {
    /// Histogram bin width in microseconds (Azure uses 1 minute over a
    /// 4-hour range; simulated workloads idle for seconds-to-minutes, so
    /// the default is 1 s bins).
    pub bin_us: u64,
    /// Number of in-range bins; gaps beyond `bin_us * bins` count as
    /// out-of-bounds.
    pub bins: usize,
    /// Head percentile driving the prewarm window.
    pub head_quantile: f64,
    /// Tail percentile driving the keepalive horizon.
    pub tail_quantile: f64,
    /// Safety margin: the prewarm window shrinks and the keepalive
    /// horizon grows by this fraction.
    pub margin: f64,
    /// Below this many recorded gaps the policy stays on the fallback.
    pub min_samples: u64,
    /// Above this out-of-bounds fraction the histogram is distrusted and
    /// the policy stays on the fallback.
    pub oob_threshold: f64,
    /// Fallback fixed keepalive used on the low-sample / out-of-bounds
    /// path.
    pub fallback_keepalive_us: u64,
}

impl Default for HybridHistogramSpec {
    fn default() -> Self {
        HybridHistogramSpec {
            bin_us: 1_000_000,
            bins: 256,
            head_quantile: 0.05,
            tail_quantile: 0.99,
            margin: 0.10,
            min_samples: 8,
            oob_threshold: 0.5,
            fallback_keepalive_us: 900_000_000,
        }
    }
}

#[derive(Debug, Default)]
struct FuncHist {
    counts: Vec<u32>,
    total: u64,
    oob: u64,
    /// Cached `(prewarm_us, horizon_us)` decision, `None` when the
    /// histogram is not trusted; recomputed lazily after each record so
    /// steady-state decisions are O(1).
    cached: Option<Option<(u64, u64)>>,
}

/// Per-function idle-time histograms choosing prewarm + keepalive
/// windows (the Azure "Serverless in the Wild" hybrid policy). While a
/// function's histogram is under-sampled or spills out of range, the
/// policy falls back to a fixed keepalive; once trusted, a container is
/// released immediately when the head percentile predicts a long gap,
/// and a fresh one is prewarmed just ahead of the predicted next use,
/// surviving to just past the tail percentile.
#[derive(Debug)]
pub struct HybridHistogram {
    spec: HybridHistogramSpec,
    funcs: FastMap<u32, FuncHist>,
}

impl HybridHistogram {
    /// Policy over `spec`.
    pub fn new(spec: HybridHistogramSpec) -> Self {
        assert!(spec.bins > 0 && spec.bin_us > 0, "degenerate histogram");
        HybridHistogram {
            spec,
            funcs: FastMap::default(),
        }
    }

    /// `(prewarm_us, horizon_us)` for `func`, `None` on the fallback
    /// path. `horizon_us` is the predicted latest next-use instant
    /// relative to the release.
    fn windows(&mut self, func: u32) -> Option<(u64, u64)> {
        let spec = &self.spec;
        let h = self.funcs.entry(func).or_default();
        if let Some(cached) = h.cached {
            return cached;
        }
        let computed = compute_windows(spec, h);
        h.cached = Some(computed);
        computed
    }
}

fn compute_windows(spec: &HybridHistogramSpec, h: &FuncHist) -> Option<(u64, u64)> {
    if h.total < spec.min_samples {
        return None;
    }
    if (h.oob as f64) > spec.oob_threshold * h.total as f64 {
        return None;
    }
    let in_range: u64 = h.total - h.oob;
    if in_range == 0 {
        return None;
    }
    let bin_at = |q: f64| -> u64 {
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in h.counts.iter().enumerate() {
            cum += u64::from(*c);
            if cum >= target {
                return i as u64;
            }
        }
        h.counts.len() as u64 - 1
    };
    let head_end = (bin_at(spec.head_quantile) + 1) * spec.bin_us;
    let tail_end = (bin_at(spec.tail_quantile) + 1) * spec.bin_us;
    // Shrink the prewarm below the head bin's *start*, pad the horizon
    // past the tail bin's end.
    let prewarm = ((head_end.saturating_sub(spec.bin_us)) as f64 * (1.0 - spec.margin)) as u64;
    let horizon = (tail_end as f64 * (1.0 + spec.margin)) as u64;
    Some((prewarm, horizon.max(spec.bin_us)))
}

impl ColdStartPolicy for HybridHistogram {
    fn name(&self) -> &'static str {
        "hybrid-histogram"
    }

    fn keepalive_us(&mut self, func: u32, _now_us: u64, origin: ParkOrigin) -> u64 {
        let fallback = self.spec.fallback_keepalive_us;
        let bin = self.spec.bin_us;
        match self.windows(func) {
            None => match origin {
                ParkOrigin::Release => fallback,
                // A prewarm materializing after the histogram lost
                // confidence still gets a usable window.
                ParkOrigin::Prewarm => fallback,
            },
            Some((prewarm, horizon)) => match origin {
                // Confident with a real prewarm window: drop the released
                // container now, the prewarmed replacement covers the
                // predicted arrival. Without a prewarm window, hold the
                // released container for the whole horizon.
                ParkOrigin::Release => {
                    if prewarm > 0 {
                        0
                    } else {
                        horizon
                    }
                }
                ParkOrigin::Prewarm => horizon.saturating_sub(prewarm).max(bin),
            },
        }
    }

    fn prewarm_us(&mut self, func: u32, _now_us: u64) -> Option<u64> {
        match self.windows(func) {
            Some((prewarm, _)) if prewarm > 0 => Some(prewarm),
            _ => None,
        }
    }

    fn record(&mut self, func: u32, idle_gap_us: Option<u64>, _cold: bool) {
        let Some(gap) = idle_gap_us else { return };
        let bins = self.spec.bins;
        let bin_us = self.spec.bin_us;
        let h = self.funcs.entry(func).or_default();
        if h.counts.is_empty() {
            h.counts = vec![0; bins];
        }
        let idx = (gap / bin_us) as usize;
        if idx < bins {
            h.counts[idx] += 1;
        } else {
            h.oob += 1;
        }
        h.total += 1;
        h.cached = None;
    }
}

// ---------------------------------------------------------------------
// The warm-pool automaton
// ---------------------------------------------------------------------

/// Why a warm container left the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// Its keepalive window elapsed.
    Expired,
    /// The aggregate memory cap forced an LRU eviction.
    Pressure,
    /// The pool was finalized at end of run.
    Shutdown,
}

impl EvictReason {
    /// Stable label for metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            EvictReason::Expired => "expired",
            EvictReason::Pressure => "pressure",
            EvictReason::Shutdown => "shutdown",
        }
    }
}

/// One input to the automaton — the stream the oracle replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// An invocation arrived.
    Invoke {
        /// Virtual microseconds.
        at_us: u64,
        /// Function identity.
        func: u32,
        /// Requested memory.
        memory_mb: u64,
    },
    /// A running container returned gracefully.
    Release {
        /// Virtual microseconds.
        at_us: u64,
        /// Function identity.
        func: u32,
        /// The container's memory.
        memory_mb: u64,
    },
    /// End of run.
    Finalize {
        /// Virtual microseconds.
        at_us: u64,
    },
}

/// One decision the automaton + policy made — what the oracle must
/// reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolDecision {
    /// An invocation was served warm (`cid` names the reused container)
    /// or cold.
    Start {
        /// Virtual microseconds.
        at_us: u64,
        /// Function identity.
        func: u32,
        /// The reused container, `None` on a cold start.
        warm: Option<u64>,
    },
    /// A container was parked with an expiry.
    Park {
        /// Virtual microseconds.
        at_us: u64,
        /// The new container id.
        cid: u64,
        /// Function identity.
        func: u32,
        /// Absolute expiry instant ([`FOREVER_US`]-saturated).
        expires_us: u64,
    },
    /// A pending prewarm materialized into a warm container.
    Prewarm {
        /// Virtual microseconds (the prewarm's ready instant).
        at_us: u64,
        /// The new container id.
        cid: u64,
        /// Function identity.
        func: u32,
    },
    /// A warm container left the pool.
    Evict {
        /// Virtual microseconds.
        at_us: u64,
        /// The evicted container.
        cid: u64,
        /// Why.
        reason: EvictReason,
    },
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Invocations served from the pool.
    pub warm_starts: u64,
    /// Invocations that missed.
    pub cold_starts: u64,
    /// Prewarms materialized.
    pub prewarm_starts: u64,
    /// Evictions by keepalive expiry.
    pub evicted_expired: u64,
    /// Evictions by memory pressure.
    pub evicted_pressure: u64,
    /// Evictions at finalize.
    pub evicted_shutdown: u64,
    /// Total idle warm memory held, in MB·µs — every parked container's
    /// idle span counts, whether it was later reused or evicted.
    pub wasted_mb_us: u128,
}

impl PoolStats {
    /// Cold starts over all starts (0 when nothing started).
    pub fn cold_fraction(&self) -> f64 {
        let total = self.warm_starts + self.cold_starts;
        if total == 0 {
            0.0
        } else {
            self.cold_starts as f64 / total as f64
        }
    }

    /// Idle warm memory held, in GB·s.
    pub fn wasted_gb_seconds(&self) -> f64 {
        self.wasted_mb_us as f64 / 1e6 / 1024.0
    }
}

// Warm containers are fungible across functions, so entries carry no
// func — only the Park/Prewarm decision log records which function
// parked them.
#[derive(Debug, Clone, Copy)]
struct WarmEntry {
    cid: u64,
    memory_mb: u64,
    idle_since_us: u64,
    expires_us: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingPrewarm {
    func: u32,
    memory_mb: u64,
    ready_us: u64,
}

/// The warm-pool state machine: containers, pending prewarms, the
/// policy, and the input/decision logs. Owned by `Cloud`; also drivable
/// directly (no simulator required) by the property suites and benches.
#[derive(Debug)]
pub struct WarmPool {
    policy: Box<dyn ColdStartPolicy>,
    warm: Vec<WarmEntry>,
    pending: Vec<PendingPrewarm>,
    last_release: FastMap<u32, u64>,
    next_cid: u64,
    warm_mb: u64,
    stats: PoolStats,
    inputs: Vec<PoolEvent>,
    decisions: Vec<PoolDecision>,
    finalized: bool,
}

impl WarmPool {
    /// A pool under `policy`, seeded with `prewarmed` containers of
    /// `prewarmed_mb` each (func 0, idle since t=0). Seeding asks the
    /// policy for each container's keepalive in `cid` order and then
    /// enforces the cap; seeds are not logged (the oracle seeds from the
    /// same config).
    pub fn new(policy: Box<dyn ColdStartPolicy>, prewarmed: usize, prewarmed_mb: u64) -> Self {
        let mut pool = WarmPool {
            policy,
            warm: Vec::new(),
            pending: Vec::new(),
            last_release: FastMap::default(),
            next_cid: 0,
            warm_mb: 0,
            stats: PoolStats::default(),
            inputs: Vec::new(),
            decisions: Vec::new(),
            finalized: false,
        };
        for _ in 0..prewarmed {
            let keepalive = pool.policy.keepalive_us(0, 0, ParkOrigin::Prewarm);
            pool.insert(0, prewarmed_mb, keepalive);
        }
        pool.enforce_cap(0);
        pool
    }

    /// The policy's label.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current warm container count.
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }

    /// Aggregate reserved warm memory in MB.
    pub fn warm_memory_mb(&self) -> u64 {
        self.warm_mb
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// The input stream consumed so far (for oracle replay).
    pub fn inputs(&self) -> &[PoolEvent] {
        &self.inputs
    }

    /// The decision log so far (what the oracle must reproduce).
    pub fn decisions(&self) -> &[PoolDecision] {
        &self.decisions
    }

    fn insert(&mut self, at_us: u64, memory_mb: u64, keepalive_us: u64) -> u64 {
        let cid = self.next_cid;
        self.next_cid += 1;
        self.warm.push(WarmEntry {
            cid,
            memory_mb,
            idle_since_us: at_us,
            expires_us: at_us.saturating_add(keepalive_us),
        });
        self.warm_mb += memory_mb;
        cid
    }

    fn evict_at(&mut self, idx: usize, at_us: u64, reason: EvictReason) {
        let e = self.warm.swap_remove(idx);
        self.warm_mb -= e.memory_mb;
        let held = at_us.saturating_sub(e.idle_since_us);
        self.stats.wasted_mb_us += u128::from(held) * u128::from(e.memory_mb);
        match reason {
            EvictReason::Expired => self.stats.evicted_expired += 1,
            EvictReason::Pressure => self.stats.evicted_pressure += 1,
            EvictReason::Shutdown => self.stats.evicted_shutdown += 1,
        }
        self.decisions.push(PoolDecision::Evict {
            at_us,
            cid: e.cid,
            reason,
        });
    }

    fn enforce_cap(&mut self, now_us: u64) {
        let Some(cap) = self.policy.memory_cap_mb() else {
            return;
        };
        while self.warm_mb > cap && !self.warm.is_empty() {
            // LRU: minimum (idle_since, cid).
            let idx = self
                .warm
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.idle_since_us, e.cid))
                .map(|(i, _)| i)
                .expect("non-empty");
            self.evict_at(idx, now_us, EvictReason::Pressure);
        }
    }

    /// The lazy time-advance sweep: expiries, due prewarms, cap.
    pub fn advance_to(&mut self, now_us: u64) {
        // 1. Expiries, ascending (expires, cid).
        loop {
            let next = self
                .warm
                .iter()
                .enumerate()
                .filter(|(_, e)| e.expires_us <= now_us)
                .min_by_key(|(_, e)| (e.expires_us, e.cid))
                .map(|(i, _)| i);
            let Some(idx) = next else { break };
            let at = self.warm[idx].expires_us;
            self.evict_at(idx, at, EvictReason::Expired);
        }
        // 2. Due prewarms, ascending (ready, func).
        loop {
            let next = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.ready_us <= now_us)
                .min_by_key(|(_, p)| (p.ready_us, p.func))
                .map(|(i, _)| i);
            let Some(idx) = next else { break };
            let p = self.pending.remove(idx);
            let keepalive = self
                .policy
                .keepalive_us(p.func, p.ready_us, ParkOrigin::Prewarm);
            let cid = self.insert(p.ready_us, p.memory_mb, keepalive);
            self.stats.prewarm_starts += 1;
            self.decisions.push(PoolDecision::Prewarm {
                at_us: p.ready_us,
                cid,
                func: p.func,
            });
            // A prewarm whose window already closed before `now` expires
            // on the spot (next loop iteration would also catch it, but
            // the expiry belongs to this sweep's ordering).
            if let Some(i) = self.warm.iter().position(|e| e.cid == cid) {
                if self.warm[i].expires_us <= now_us {
                    let at = self.warm[i].expires_us;
                    self.evict_at(i, at, EvictReason::Expired);
                }
            }
        }
        // 3. Cap.
        self.enforce_cap(now_us);
    }

    /// An invocation at `now_us`; returns `true` on a warm start.
    pub fn invoke(&mut self, now_us: u64, func: u32, memory_mb: u64) -> bool {
        self.inputs.push(PoolEvent::Invoke {
            at_us: now_us,
            func,
            memory_mb,
        });
        self.advance_to(now_us);
        let gap = self.last_release.get(&func).map(|t| now_us - t);
        // MRU: maximum (idle_since, cid).
        let pick = self
            .warm
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| (e.idle_since_us, e.cid))
            .map(|(i, _)| i);
        let warm = match pick {
            Some(idx) => {
                let e = self.warm.swap_remove(idx);
                self.warm_mb -= e.memory_mb;
                // Warmth is paid for in memory-time whether or not it is
                // eventually used — charge the reused span too.
                let held = now_us.saturating_sub(e.idle_since_us);
                self.stats.wasted_mb_us += u128::from(held) * u128::from(e.memory_mb);
                self.stats.warm_starts += 1;
                self.decisions.push(PoolDecision::Start {
                    at_us: now_us,
                    func,
                    warm: Some(e.cid),
                });
                true
            }
            None => {
                self.stats.cold_starts += 1;
                self.decisions.push(PoolDecision::Start {
                    at_us: now_us,
                    func,
                    warm: None,
                });
                false
            }
        };
        self.policy.record(func, gap, !warm);
        warm
    }

    /// A graceful release at `now_us`: parks a fresh container and may
    /// schedule a prewarm.
    pub fn release(&mut self, now_us: u64, func: u32, memory_mb: u64) {
        self.inputs.push(PoolEvent::Release {
            at_us: now_us,
            func,
            memory_mb,
        });
        self.advance_to(now_us);
        self.last_release.insert(func, now_us);
        let keepalive = self.policy.keepalive_us(func, now_us, ParkOrigin::Release);
        let cid = self.insert(now_us, memory_mb, keepalive);
        self.decisions.push(PoolDecision::Park {
            at_us: now_us,
            cid,
            func,
            expires_us: now_us.saturating_add(keepalive),
        });
        if let Some(p) = self.policy.prewarm_us(func, now_us) {
            if p > 0 {
                // At most one pending prewarm per function; latest wins.
                self.pending.retain(|q| q.func != func);
                self.pending.push(PendingPrewarm {
                    func,
                    memory_mb,
                    ready_us: now_us.saturating_add(p),
                });
            }
        }
        self.enforce_cap(now_us);
    }

    /// End of run: everything still warm is charged and dropped. A
    /// second call is a no-op.
    pub fn finalize(&mut self, now_us: u64) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.inputs.push(PoolEvent::Finalize { at_us: now_us });
        self.advance_to(now_us);
        self.pending.clear();
        loop {
            let next = self
                .warm
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.cid)
                .map(|(i, _)| i);
            let Some(idx) = next else { break };
            self.evict_at(idx, now_us, EvictReason::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(spec: ColdStartSpec, prewarmed: usize) -> WarmPool {
        WarmPool::new(spec.build(), prewarmed, 1_536)
    }

    #[test]
    fn forever_matches_the_counter_model() {
        let mut p = pool(ColdStartSpec::forever(), 2);
        assert!(p.invoke(1_000_000, 0, 1_536));
        assert!(p.invoke(2_000_000, 0, 1_536));
        assert!(!p.invoke(3_000_000, 0, 1_536), "pool exhausted: cold");
        p.release(4_000_000, 0, 1_536);
        assert!(p.invoke(5_000_000, 0, 1_536), "release rewarms");
        let s = p.stats();
        assert_eq!((s.warm_starts, s.cold_starts), (3, 1));
        assert_eq!(s.evicted_expired + s.evicted_pressure, 0);
    }

    #[test]
    fn fixed_keepalive_expires_idle_containers() {
        let mut p = pool(ColdStartSpec::fixed_secs(10), 1);
        // Idle from 0; invoke at 10 s lands exactly at expiry → cold.
        assert!(!p.invoke(10_000_000, 0, 1_536));
        let s = p.stats();
        assert_eq!(s.cold_starts, 1);
        assert_eq!(s.evicted_expired, 1);
        // Wasted memory: 10 s of 1536 MB = 1.5 GB·s.
        assert!((s.wasted_gb_seconds() - 15.0 / 1024.0 * 1024.0 * 1.5 / 1.5 * 1.0).abs() < 1e9);
        assert_eq!(s.wasted_mb_us, 1_536u128 * 10_000_000);
    }

    #[test]
    fn fixed_keepalive_survives_inside_the_window() {
        let mut p = pool(ColdStartSpec::fixed_secs(10), 1);
        assert!(p.invoke(9_999_999, 0, 1_536), "inside the window: warm");
    }

    #[test]
    fn mru_reuse_and_lru_pressure_eviction() {
        let mut p = pool(ColdStartSpec::UnloadOnPressure { cap_mb: 4_000 }, 0);
        p.release(1_000_000, 0, 1_536); // cid 0
        p.release(2_000_000, 0, 1_536); // cid 1
        p.release(3_000_000, 0, 1_536); // cid 2 → 4608 MB > 4000 → evict cid 0
        assert_eq!(p.warm_len(), 2);
        assert!(matches!(
            p.decisions().last(),
            Some(PoolDecision::Evict {
                cid: 0,
                reason: EvictReason::Pressure,
                ..
            })
        ));
        // MRU pick: cid 2 (parked last).
        assert!(p.invoke(4_000_000, 0, 1_536));
        assert!(matches!(
            p.decisions().last(),
            Some(PoolDecision::Start { warm: Some(2), .. })
        ));
    }

    #[test]
    fn hybrid_falls_back_until_sampled_then_learns() {
        let spec = HybridHistogramSpec {
            min_samples: 4,
            fallback_keepalive_us: 5_000_000,
            ..HybridHistogramSpec::default()
        };
        let mut policy = HybridHistogram::new(spec);
        // Under-sampled: fallback window.
        assert_eq!(
            policy.keepalive_us(7, 0, ParkOrigin::Release),
            5_000_000,
            "low-sample fallback"
        );
        assert_eq!(policy.prewarm_us(7, 0), None);
        // Feed 8 gaps of ~60 s.
        for _ in 0..8 {
            policy.record(7, Some(60_000_000), false);
        }
        let k = policy.keepalive_us(7, 0, ParkOrigin::Release);
        // Head percentile ≈ 60 s ⇒ prewarm window > 0 ⇒ release drops the
        // container immediately.
        assert_eq!(k, 0, "confident + prewarm ⇒ drop on release");
        let p = policy.prewarm_us(7, 0).expect("prewarm window");
        assert!(p > 50_000_000 && p < 60_000_000, "prewarm ≈ 0.9·head: {p}");
        let kp = policy.keepalive_us(7, 0, ParkOrigin::Prewarm);
        assert!(
            p + kp > 60_000_000,
            "prewarmed container must cover the gap: {p} + {kp}"
        );
    }

    #[test]
    fn hybrid_oob_distrusts_the_histogram() {
        let spec = HybridHistogramSpec {
            bins: 4,
            bin_us: 1_000_000,
            min_samples: 4,
            oob_threshold: 0.5,
            fallback_keepalive_us: 7_000_000,
            ..HybridHistogramSpec::default()
        };
        let mut policy = HybridHistogram::new(spec);
        for _ in 0..8 {
            policy.record(1, Some(60_000_000), false); // all OOB (> 4 s)
        }
        assert_eq!(
            policy.keepalive_us(1, 0, ParkOrigin::Release),
            7_000_000,
            "OOB-dominated histogram falls back"
        );
    }

    #[test]
    fn prewarm_materializes_and_serves_the_next_invoke() {
        let spec = HybridHistogramSpec {
            min_samples: 2,
            fallback_keepalive_us: 1_000_000,
            ..HybridHistogramSpec::default()
        };
        let mut p = WarmPool::new(Box::new(HybridHistogram::new(spec)), 0, 1_536);
        // Teach: gaps of 30 s between release and next invoke.
        let mut t = 0u64;
        for _ in 0..4 {
            p.release(t, 0, 1_536);
            t += 30_000_000;
            p.invoke(t, 0, 1_536);
            t += 1_000_000;
        }
        let before = p.stats();
        // Now confident: release drops the container, prewarms ~27 s out.
        p.release(t, 0, 1_536);
        let warm = p.invoke(t + 30_000_000, 0, 1_536);
        let after = p.stats();
        assert!(warm, "prewarmed container must cover the recurrent gap");
        assert_eq!(after.prewarm_starts, before.prewarm_starts + 1);
    }

    #[test]
    fn parse_selectors() {
        assert_eq!(ColdStartSpec::parse("forever").unwrap(), ColdStartSpec::forever());
        assert_eq!(
            ColdStartSpec::parse("fixed:60").unwrap(),
            ColdStartSpec::fixed_secs(60)
        );
        assert_eq!(
            ColdStartSpec::parse("pressure:4096").unwrap(),
            ColdStartSpec::UnloadOnPressure { cap_mb: 4_096 }
        );
        assert!(matches!(
            ColdStartSpec::parse("hybrid:20").unwrap(),
            ColdStartSpec::HybridHistogram(HybridHistogramSpec {
                fallback_keepalive_us: 20_000_000,
                ..
            })
        ));
        assert!(ColdStartSpec::parse("bogus").is_err());
        assert!(ColdStartSpec::parse("fixed").is_err());
        // `selector()` round-trips through `parse()` for every arm.
        for s in ["forever", "fixed:30", "pressure:6144", "hybrid:15"] {
            let spec = ColdStartSpec::parse(s).unwrap();
            assert_eq!(spec.selector(), s);
            assert_eq!(ColdStartSpec::parse(&spec.selector()).unwrap(), spec);
        }
    }

    #[test]
    fn finalize_charges_and_clears_idempotently() {
        let mut p = pool(ColdStartSpec::forever(), 0);
        p.release(1_000_000, 0, 1_024);
        p.finalize(3_000_000);
        let s = p.stats();
        assert_eq!(s.evicted_shutdown, 1);
        assert_eq!(s.wasted_mb_us, 1_024u128 * 2_000_000);
        assert_eq!(p.warm_len(), 0);
        p.finalize(9_000_000);
        assert_eq!(p.stats(), s, "second finalize is a no-op");
    }
}
