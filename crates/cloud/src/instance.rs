//! EC2-like instance types: the m4 family used throughout the paper.

use std::fmt;

/// An IaaS instance type with its resource capacities and on-demand price.
///
/// Bandwidths are stored in bytes/second ready for the fabric. The values
/// match the paper's era (2019/2020 us-east-1 m4 family): the paper quotes
/// 750 Mbps dedicated EBS bandwidth for m4.xlarge, 2 000 Mbps for
/// m4.4xlarge and 4 000 Mbps for m4.10xlarge.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceType {
    /// Type name, e.g. `"m4.xlarge"`.
    pub name: &'static str,
    /// Number of vCPUs (one executor core each).
    pub vcpus: u32,
    /// Main memory in MiB.
    pub memory_mb: u64,
    /// Dedicated EBS (disk) bandwidth in bytes/second.
    pub ebs_bytes_per_sec: f64,
    /// Network bandwidth in bytes/second.
    pub net_bytes_per_sec: f64,
    /// On-demand price in USD per hour.
    pub hourly_usd: f64,
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

const fn mbps(v: f64) -> f64 {
    v * 1_000_000.0 / 8.0 // megabits/s → bytes/s
}

/// `m4.large`: 2 vCPU, 8 GiB, $0.10/h.
pub const M4_LARGE: InstanceType = InstanceType {
    name: "m4.large",
    vcpus: 2,
    memory_mb: 8 * 1024,
    ebs_bytes_per_sec: mbps(450.0),
    net_bytes_per_sec: mbps(450.0),
    hourly_usd: 0.10,
};

/// `m4.xlarge`: 4 vCPU, 16 GiB, 750 Mbps EBS, $0.20/h. The paper colocates
/// the Spark master and single HDFS node on this type in the PageRank and
/// K-means experiments.
pub const M4_XLARGE: InstanceType = InstanceType {
    name: "m4.xlarge",
    vcpus: 4,
    memory_mb: 16 * 1024,
    ebs_bytes_per_sec: mbps(750.0),
    net_bytes_per_sec: mbps(750.0),
    hourly_usd: 0.20,
};

/// `m4.2xlarge`: 8 vCPU, 32 GiB, $0.40/h.
pub const M4_2XLARGE: InstanceType = InstanceType {
    name: "m4.2xlarge",
    vcpus: 8,
    memory_mb: 32 * 1024,
    ebs_bytes_per_sec: mbps(1_000.0),
    net_bytes_per_sec: mbps(1_000.0),
    hourly_usd: 0.40,
};

/// `m4.4xlarge`: 16 vCPU, 64 GiB, 2 000 Mbps EBS, $0.80/h. Used for the
/// 16-core PageRank baseline.
pub const M4_4XLARGE: InstanceType = InstanceType {
    name: "m4.4xlarge",
    vcpus: 16,
    memory_mb: 64 * 1024,
    ebs_bytes_per_sec: mbps(2_000.0),
    net_bytes_per_sec: mbps(2_000.0),
    hourly_usd: 0.80,
};

/// `m4.8xlarge`: named by the paper's profiling ladder for the 32-core rung
/// (the real m4 family jumps from 4xlarge to 10xlarge; we model the type the
/// paper names, interpolating its resources).
pub const M4_8XLARGE: InstanceType = InstanceType {
    name: "m4.8xlarge",
    vcpus: 32,
    memory_mb: 128 * 1024,
    ebs_bytes_per_sec: mbps(3_000.0),
    net_bytes_per_sec: mbps(3_000.0),
    hourly_usd: 1.60,
};

/// `m4.10xlarge`: 40 vCPU, 160 GiB, 4 000 Mbps EBS, $2.00/h. Hosts the
/// 32-core TPC-DS runs as well as the SplitServe master + HDFS in them.
pub const M4_10XLARGE: InstanceType = InstanceType {
    name: "m4.10xlarge",
    vcpus: 40,
    memory_mb: 160 * 1024,
    ebs_bytes_per_sec: mbps(4_000.0),
    net_bytes_per_sec: mbps(4_000.0),
    hourly_usd: 2.00,
};

/// `m4.16xlarge`: 64 vCPU, 256 GiB, $3.20/h. Hosts the 64-core SparkPi runs.
pub const M4_16XLARGE: InstanceType = InstanceType {
    name: "m4.16xlarge",
    vcpus: 64,
    memory_mb: 256 * 1024,
    ebs_bytes_per_sec: mbps(10_000.0),
    net_bytes_per_sec: mbps(10_000.0),
    hourly_usd: 3.20,
};

/// The whole m4 family, smallest first.
pub fn m4_family() -> Vec<InstanceType> {
    vec![
        M4_LARGE,
        M4_XLARGE,
        M4_2XLARGE,
        M4_4XLARGE,
        M4_8XLARGE,
        M4_10XLARGE,
        M4_16XLARGE,
    ]
}

/// The fewest m4 instances that provide at least `cores` vCPUs, preferring
/// the largest types to minimize inter-VM communication — the packing rule
/// of the paper's Fig. 4(b) profiling ("for each degree of parallelism, we
/// use the fewest number of instances that provide the required number of
/// cores").
///
/// # Examples
///
/// ```
/// use splitserve_cloud::fewest_instances_for_cores;
///
/// let fleet = fewest_instances_for_cores(128);
/// assert_eq!(fleet.len(), 2);
/// assert_eq!(fleet[0].name, "m4.16xlarge");
/// ```
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn fewest_instances_for_cores(cores: u32) -> Vec<InstanceType> {
    assert!(cores > 0, "need at least one core");
    let family = m4_family();
    let mut fleet = Vec::new();
    let mut remaining = cores;
    while remaining > 0 {
        // Smallest single instance that covers the remainder, else the
        // largest available.
        let pick = family
            .iter()
            .find(|t| t.vcpus >= remaining)
            .unwrap_or_else(|| family.last().expect("family not empty"));
        remaining = remaining.saturating_sub(pick.vcpus);
        fleet.push(pick.clone());
    }
    fleet
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_is_sorted_by_size_and_price() {
        let fam = m4_family();
        for w in fam.windows(2) {
            assert!(w[0].vcpus <= w[1].vcpus);
            assert!(w[0].hourly_usd <= w[1].hourly_usd);
        }
    }

    #[test]
    fn paper_packing_ladder() {
        // The exact ladder from §5.1: 1-2, 4, 8, 16, 32, 64, 128 cores.
        let expect = [
            (1, vec!["m4.large"]),
            (2, vec!["m4.large"]),
            (4, vec!["m4.xlarge"]),
            (8, vec!["m4.2xlarge"]),
            (16, vec!["m4.4xlarge"]),
            (32, vec!["m4.8xlarge"]),
            (64, vec!["m4.16xlarge"]),
            (128, vec!["m4.16xlarge", "m4.16xlarge"]),
        ];
        for (cores, names) in expect {
            let fleet = fewest_instances_for_cores(cores);
            let got: Vec<&str> = fleet.iter().map(|t| t.name).collect();
            assert_eq!(got, names, "for {cores} cores");
        }
    }

    #[test]
    fn fleet_always_covers_requested_cores() {
        for cores in 1..200 {
            let fleet = fewest_instances_for_cores(cores);
            let total: u32 = fleet.iter().map(|t| t.vcpus).sum();
            assert!(total >= cores, "{cores} cores not covered: {total}");
        }
    }

    #[test]
    fn bandwidth_units_are_bytes_per_second() {
        // 750 Mbps = 93.75 MB/s
        assert!((M4_XLARGE.ebs_bytes_per_sec - 93_750_000.0).abs() < 1.0);
    }
}
