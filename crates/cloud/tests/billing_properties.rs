//! Property tests for the pricing and billing rules — the arithmetic
//! behind every cost figure in the reproduction.

use splitserve_cloud::{
    fig1_vcpu_cost_at, lambda_compute_cost, lambda_cost, vm_cost, Cloud, CloudSpec, M4_10XLARGE,
    M4_LARGE, M4_XLARGE,
};
use splitserve_des::{Dist, Fabric, Sim, SimDuration, SimTime};
use splitserve_rt::check;

fn quiet_spec() -> CloudSpec {
    CloudSpec {
        vm_boot: Dist::constant(110.0),
        lambda_warm_start: Dist::constant(0.1),
        lambda_cold_start: Dist::constant(3.0),
        lambda_net_jitter: Dist::constant(1.0),
        ..CloudSpec::default()
    }
}

/// Running longer never costs less, on either substrate.
#[test]
fn costs_are_monotone_in_runtime() {
    check::run("costs_are_monotone_in_runtime", 128, |g| {
        let a = g.u64_in(0, 10_000_000);
        let b = g.u64_in(0, 10_000_000);
        let (lo, hi) = (a.min(b), a.max(b));
        let lo_d = SimDuration::from_millis(lo);
        let hi_d = SimDuration::from_millis(hi);
        for itype in [&M4_LARGE, &M4_XLARGE, &M4_10XLARGE] {
            assert!(vm_cost(itype, lo_d) <= vm_cost(itype, hi_d));
        }
        for mem in [512u64, 1536, 3008] {
            assert!(lambda_compute_cost(mem, lo_d) <= lambda_compute_cost(mem, hi_d));
        }
    });
}

/// VM billing: never below the 60 s minimum, never above runtime + 1 s
/// of rounding.
#[test]
fn vm_billing_bounds() {
    check::run("vm_billing_bounds", 128, |g| {
        let ms = g.u64_in(0, 20_000_000);
        let d = SimDuration::from_millis(ms);
        let cost = vm_cost(&M4_LARGE, d);
        let per_sec = M4_LARGE.hourly_usd / 3600.0;
        let min_cost = per_sec * 60.0;
        assert!(cost >= min_cost - 1e-12);
        let upper = per_sec * (d.as_secs_f64().max(60.0) + 1.0);
        assert!(cost <= upper + 1e-12);
    });
}

/// Lambda billing: exact 100 ms quantization — cost is a multiple of
/// the 100 ms price, and within one quantum of the fluid cost.
#[test]
fn lambda_billing_quantizes() {
    check::run("lambda_billing_quantizes", 128, |g| {
        let ms = g.u64_in(0, 5_000_000);
        let mem = g.u64_in(128, 3_008);
        let d = SimDuration::from_millis(ms);
        let cost = lambda_compute_cost(mem, d);
        let per_100ms = lambda_compute_cost(mem, SimDuration::from_millis(100));
        if per_100ms <= 0.0 {
            return; // degenerate memory size; nothing to quantize
        }
        let quanta = cost / per_100ms;
        assert!((quanta - quanta.round()).abs() < 1e-6, "not quantized: {quanta}");
        let fluid = per_100ms * (ms as f64 / 100.0);
        assert!(cost + 1e-12 >= fluid, "billed below fluid cost");
        assert!(cost <= fluid + per_100ms + 1e-12, "over-billed by more than a quantum");
    });
}

/// Figure 1's defining property: at every instant before the
/// crossover the Lambda is cheaper; after it, never cheaper again.
#[test]
fn fig1_crossover_is_a_single_crossing() {
    check::run("fig1_crossover_is_a_single_crossing", 128, |g| {
        let ms = g.u64_in(100, 7_200_000);
        let x = splitserve_cloud::fig1_crossover(&M4_LARGE, SimDuration::from_secs(7_200))
            .expect("crossover exists");
        let t = SimDuration::from_millis(ms);
        let (vm, la) = fig1_vcpu_cost_at(&M4_LARGE, t);
        if t < x {
            assert!(la <= vm + 1e-12, "lambda pricier before crossover at {t}");
        } else {
            // From the crossover on, the lambda never undercuts the VM:
            // both are monotone staircases and the lambda's slope is
            // strictly steeper.
            assert!(la >= vm - 1e-9, "lambda cheaper after crossover at {t}");
        }
    });
}

/// End-to-end ledger consistency: for an arbitrary schedule of VM and
/// Lambda sessions, after shutdown the accrued cost equals the
/// finalized total, and the total equals the sum of the per-resource
/// prices.
#[test]
fn ledger_matches_hand_computed_bill() {
    check::run("ledger_matches_hand_computed_bill", 48, |g| {
        let vm_secs = g.vec(0, 4, |g| g.u64_in(1, 400));
        let lambda_secs = g.vec(0, 4, |g| g.u64_in(1, 400));
        let mut sim = Sim::new(1);
        let cloud = Cloud::new(quiet_spec(), Fabric::new());
        let mut expected = 0.0;
        for s in &vm_secs {
            let vm = cloud.provision_vm_ready(&mut sim, M4_LARGE.clone());
            let c = cloud.clone();
            let dur = SimDuration::from_secs(*s);
            sim.schedule_in(dur, move |sim| c.terminate_vm(sim, vm));
            expected += vm_cost(&M4_LARGE, dur);
        }
        for s in &lambda_secs {
            let c = cloud.clone();
            let dur = SimDuration::from_secs(*s);
            cloud.invoke_lambda(
                &mut sim,
                1536,
                move |sim, id| {
                    let c2 = c.clone();
                    sim.schedule_in(dur, move |sim| c2.release_lambda(sim, id));
                },
                |_, _| {},
            );
            expected += lambda_cost(1536, dur);
        }
        sim.run();
        let total = cloud.total_cost();
        assert!((total - expected).abs() < 1e-9, "total {total} vs expected {expected}");
        assert!((cloud.accrued_cost(sim.now()) - total).abs() < 1e-12);
    });
}

/// Warm-pool conservation: invocations never exceed warm starts +
/// cold starts, and releases re-warm the pool.
#[test]
fn start_counts_add_up() {
    check::run("start_counts_add_up", 48, |g| {
        let n = g.usize_in(1, 20);
        let mut sim = Sim::new(2);
        let spec = CloudSpec { prewarmed_lambdas: 3, ..quiet_spec() };
        let cloud = Cloud::new(spec, Fabric::new());
        for _ in 0..n {
            let c = cloud.clone();
            cloud.invoke_lambda(
                &mut sim,
                1536,
                move |sim, id| {
                    let c2 = c.clone();
                    sim.schedule_in(SimDuration::from_secs(1), move |sim| {
                        c2.release_lambda(sim, id);
                    });
                },
                |_, _| {},
            );
        }
        sim.run_until(SimTime::from_secs(500));
        let (warm, cold) = cloud.start_counts();
        assert_eq!(warm + cold, n as u64);
        // Sequential-ish invokes with 3 prewarmed: at most the bursts that
        // overlapped beyond pool depth went cold.
        assert!(warm >= 3.min(n) as u64);
    });
}
