//! The cold-start policy oracle: an engine-free reference implementation
//! of the warm-pool automaton, differentially checked against
//! [`WarmPool`] for every policy.
//!
//! The reference simulator below re-implements the automaton spec from
//! `coldstart.rs`'s module docs with *different data structures*
//! (`BTreeMap`s keyed for the spec's tie-break orders instead of scanned
//! `Vec`s) so a bookkeeping bug in either implementation shows up as a
//! decision-log divergence. Two stream sources feed the differential:
//!
//! 1. seeded random event streams driven through both automata directly
//!    (no simulator), and
//! 2. full `Cloud` runs whose recorded input stream (`pool_inputs`) is
//!    replayed through the oracle and compared against `pool_decisions`.

use std::collections::BTreeMap;

use splitserve_cloud::{
    Cloud, CloudSpec, ColdStartPolicy, ColdStartSpec, EvictReason, HybridHistogramSpec,
    ParkOrigin, PoolDecision, PoolEvent, PoolStats, WarmPool,
};
use splitserve_des::{Dist, Fabric, Sim, SimDuration, SimTime};
use splitserve_rt::check::{self, Gen};

// ---------------------------------------------------------------------
// The reference simulator
// ---------------------------------------------------------------------

struct RefEntry {
    memory_mb: u64,
    idle_since_us: u64,
    expires_us: u64,
}

/// Reference warm-pool automaton. Mirrors the spec, not the
/// implementation: entries live in a cid-keyed `BTreeMap`, selection
/// scans derive their orders from the spec's tie-break rules.
struct RefPool {
    policy: Box<dyn ColdStartPolicy>,
    warm: BTreeMap<u64, RefEntry>,
    pending: BTreeMap<u32, (u64, u64)>, // func -> (ready_us, memory_mb)
    last_release: BTreeMap<u32, u64>,
    next_cid: u64,
    stats: PoolStats,
    decisions: Vec<PoolDecision>,
}

impl RefPool {
    fn new(policy: Box<dyn ColdStartPolicy>, prewarmed: usize, prewarmed_mb: u64) -> Self {
        let mut p = RefPool {
            policy,
            warm: BTreeMap::new(),
            pending: BTreeMap::new(),
            last_release: BTreeMap::new(),
            next_cid: 0,
            stats: PoolStats::default(),
            decisions: Vec::new(),
        };
        for _ in 0..prewarmed {
            let keepalive = p.policy.keepalive_us(0, 0, ParkOrigin::Prewarm);
            p.park(0, prewarmed_mb, keepalive);
        }
        p.enforce_cap(0);
        p
    }

    fn park(&mut self, at_us: u64, memory_mb: u64, keepalive_us: u64) -> u64 {
        let cid = self.next_cid;
        self.next_cid += 1;
        self.warm.insert(
            cid,
            RefEntry {
                memory_mb,
                idle_since_us: at_us,
                expires_us: at_us.saturating_add(keepalive_us),
            },
        );
        cid
    }

    fn warm_mb(&self) -> u64 {
        self.warm.values().map(|e| e.memory_mb).sum()
    }

    fn evict(&mut self, cid: u64, at_us: u64, reason: EvictReason) {
        let e = self.warm.remove(&cid).expect("evicting a parked entry");
        let held = at_us.saturating_sub(e.idle_since_us);
        self.stats.wasted_mb_us += u128::from(held) * u128::from(e.memory_mb);
        match reason {
            EvictReason::Expired => self.stats.evicted_expired += 1,
            EvictReason::Pressure => self.stats.evicted_pressure += 1,
            EvictReason::Shutdown => self.stats.evicted_shutdown += 1,
        }
        self.decisions.push(PoolDecision::Evict { at_us, cid, reason });
    }

    fn enforce_cap(&mut self, now_us: u64) {
        let Some(cap) = self.policy.memory_cap_mb() else {
            return;
        };
        while self.warm_mb() > cap && !self.warm.is_empty() {
            // LRU = min (idle_since, cid).
            let cid = self
                .warm
                .iter()
                .min_by_key(|(cid, e)| (e.idle_since_us, **cid))
                .map(|(cid, _)| *cid)
                .unwrap();
            self.evict(cid, now_us, EvictReason::Pressure);
        }
    }

    fn advance(&mut self, now_us: u64) {
        // 1. Expiries, ascending (expires, cid).
        loop {
            let next = self
                .warm
                .iter()
                .filter(|(_, e)| e.expires_us <= now_us)
                .min_by_key(|(cid, e)| (e.expires_us, **cid))
                .map(|(cid, e)| (*cid, e.expires_us));
            let Some((cid, at)) = next else { break };
            self.evict(cid, at, EvictReason::Expired);
        }
        // 2. Due prewarms, ascending (ready, func); a materialized
        //    prewarm whose window already closed expires on the spot.
        loop {
            let next = self
                .pending
                .iter()
                .filter(|(_, (ready, _))| *ready <= now_us)
                .min_by_key(|(func, (ready, _))| (*ready, **func))
                .map(|(func, _)| *func);
            let Some(func) = next else { break };
            let (ready, mem) = self.pending.remove(&func).unwrap();
            let keepalive = self.policy.keepalive_us(func, ready, ParkOrigin::Prewarm);
            let cid = self.park(ready, mem, keepalive);
            self.stats.prewarm_starts += 1;
            self.decisions.push(PoolDecision::Prewarm {
                at_us: ready,
                cid,
                func,
            });
            let expires = self.warm[&cid].expires_us;
            if expires <= now_us {
                self.evict(cid, expires, EvictReason::Expired);
            }
        }
        // 3. Cap.
        self.enforce_cap(now_us);
    }

    fn apply(&mut self, ev: &PoolEvent) {
        match *ev {
            PoolEvent::Invoke {
                at_us,
                func,
                memory_mb: _,
            } => {
                self.advance(at_us);
                let gap = self.last_release.get(&func).map(|t| at_us - t);
                // MRU = max (idle_since, cid).
                let pick = self
                    .warm
                    .iter()
                    .max_by_key(|(cid, e)| (e.idle_since_us, **cid))
                    .map(|(cid, _)| *cid);
                let warm = match pick {
                    Some(cid) => {
                        let e = self.warm.remove(&cid).unwrap();
                        let held = at_us.saturating_sub(e.idle_since_us);
                        self.stats.wasted_mb_us += u128::from(held) * u128::from(e.memory_mb);
                        self.stats.warm_starts += 1;
                        self.decisions.push(PoolDecision::Start {
                            at_us,
                            func,
                            warm: Some(cid),
                        });
                        true
                    }
                    None => {
                        self.stats.cold_starts += 1;
                        self.decisions.push(PoolDecision::Start {
                            at_us,
                            func,
                            warm: None,
                        });
                        false
                    }
                };
                self.policy.record(func, gap, !warm);
            }
            PoolEvent::Release {
                at_us,
                func,
                memory_mb,
            } => {
                self.advance(at_us);
                self.last_release.insert(func, at_us);
                let keepalive = self.policy.keepalive_us(func, at_us, ParkOrigin::Release);
                let cid = self.park(at_us, memory_mb, keepalive);
                self.decisions.push(PoolDecision::Park {
                    at_us,
                    cid,
                    func,
                    expires_us: at_us.saturating_add(keepalive),
                });
                if let Some(p) = self.policy.prewarm_us(func, at_us) {
                    if p > 0 {
                        self.pending
                            .insert(func, (at_us.saturating_add(p), memory_mb));
                    }
                }
                self.enforce_cap(at_us);
            }
            PoolEvent::Finalize { at_us } => {
                self.advance(at_us);
                self.pending.clear();
                while let Some(cid) = self.warm.keys().next().copied() {
                    self.evict(cid, at_us, EvictReason::Shutdown);
                }
            }
        }
    }
}

/// Replays `inputs` through a fresh reference pool and returns its
/// decision log + stats.
fn oracle_replay(
    spec: &ColdStartSpec,
    prewarmed: usize,
    prewarmed_mb: u64,
    inputs: &[PoolEvent],
) -> (Vec<PoolDecision>, PoolStats) {
    let mut oracle = RefPool::new(spec.build(), prewarmed, prewarmed_mb);
    for ev in inputs {
        oracle.apply(ev);
    }
    (oracle.decisions, oracle.stats)
}

fn assert_logs_match(
    label: &str,
    live: &[PoolDecision],
    oracle: &[PoolDecision],
    live_stats: PoolStats,
    oracle_stats: PoolStats,
) {
    for (i, (l, o)) in live.iter().zip(oracle.iter()).enumerate() {
        assert_eq!(
            l, o,
            "[{label}] decision #{i} diverges: live {l:?} vs oracle {o:?}"
        );
    }
    assert_eq!(
        live.len(),
        oracle.len(),
        "[{label}] decision-log lengths diverge"
    );
    assert_eq!(live_stats, oracle_stats, "[{label}] stats diverge");
}

// ---------------------------------------------------------------------
// Stream generators
// ---------------------------------------------------------------------

fn policy_specs() -> Vec<ColdStartSpec> {
    vec![
        ColdStartSpec::forever(),
        ColdStartSpec::fixed_secs(30),
        ColdStartSpec::Fixed { keepalive_us: 0 },
        ColdStartSpec::UnloadOnPressure { cap_mb: 4_096 },
        ColdStartSpec::UnloadOnPressure { cap_mb: 512 },
        ColdStartSpec::HybridHistogram(HybridHistogramSpec {
            min_samples: 4,
            fallback_keepalive_us: 20_000_000,
            ..HybridHistogramSpec::default()
        }),
    ]
}

/// A random, time-ordered event stream: bursts of invokes, releases
/// trailing what was started, occasional long gaps (so fixed keepalives
/// expire and hybrid histograms accumulate out-of-bounds mass).
fn random_stream(g: &mut Gen) -> Vec<PoolEvent> {
    let mut t = 0u64;
    let mut outstanding: Vec<(u32, u64)> = Vec::new();
    let mut events = Vec::new();
    let n = g.usize_in(5, 120);
    for _ in 0..n {
        t += if g.bool() {
            g.u64_in(1_000, 2_000_000) // within bursts: ms-scale
        } else {
            g.u64_in(1_000_000, 120_000_000) // between bursts: up to 2 min
        };
        let func = g.u64_in(0, 4) as u32;
        if !outstanding.is_empty() && g.bool() {
            let idx = g.usize_in(0, outstanding.len());
            let (f, mem) = outstanding.swap_remove(idx);
            events.push(PoolEvent::Release {
                at_us: t,
                func: f,
                memory_mb: mem,
            });
        } else {
            let mem = [512u64, 1_024, 1_536, 3_008][g.usize_in(0, 4)];
            events.push(PoolEvent::Invoke {
                at_us: t,
                func,
                memory_mb: mem,
            });
            outstanding.push((func, mem));
        }
    }
    // Drain a random suffix of the outstanding set, then finalize.
    while !outstanding.is_empty() && g.bool() {
        t += g.u64_in(1_000, 5_000_000);
        let (f, mem) = outstanding.pop().unwrap();
        events.push(PoolEvent::Release {
            at_us: t,
            func: f,
            memory_mb: mem,
        });
    }
    events.push(PoolEvent::Finalize {
        at_us: t + g.u64_in(0, 60_000_000),
    });
    events
}

fn drive_live(
    spec: &ColdStartSpec,
    prewarmed: usize,
    prewarmed_mb: u64,
    events: &[PoolEvent],
) -> (Vec<PoolDecision>, PoolStats) {
    let mut pool = WarmPool::new(spec.build(), prewarmed, prewarmed_mb);
    for ev in events {
        match *ev {
            PoolEvent::Invoke {
                at_us,
                func,
                memory_mb,
            } => {
                pool.invoke(at_us, func, memory_mb);
            }
            PoolEvent::Release {
                at_us,
                func,
                memory_mb,
            } => pool.release(at_us, func, memory_mb),
            PoolEvent::Finalize { at_us } => pool.finalize(at_us),
        }
    }
    (pool.decisions().to_vec(), pool.stats())
}

// ---------------------------------------------------------------------
// Differentials
// ---------------------------------------------------------------------

/// Every policy, 64 random streams each: the live automaton and the
/// oracle must produce bit-identical decision logs and stats.
#[test]
fn oracle_differential_on_random_streams() {
    for spec in policy_specs() {
        let name = spec.name();
        check::run(&format!("oracle/{name}"), 64, |g| {
            let prewarmed = g.usize_in(0, 4);
            let events = random_stream(g);
            let (live, live_stats) = drive_live(&spec, prewarmed, 1_536, &events);
            let (oracle, oracle_stats) = oracle_replay(&spec, prewarmed, 1_536, &events);
            assert_logs_match(name, &live, &oracle, live_stats, oracle_stats);
        });
    }
}

/// The same differential via a full `Cloud` run: random invoke/release
/// schedules on the discrete-event simulator, the recorded input stream
/// replayed through the oracle.
#[test]
fn oracle_differential_on_cloud_runs() {
    for spec in policy_specs() {
        let name = spec.name();
        check::run(&format!("oracle-cloud/{name}"), 24, |g| {
            let prewarmed = g.usize_in(0, 2);
            let cloud_spec = CloudSpec {
                vm_boot: Dist::constant(110.0),
                lambda_warm_start: Dist::constant(0.1),
                lambda_cold_start: Dist::constant(3.0),
                lambda_net_jitter: Dist::constant(1.0),
                prewarmed_lambdas: prewarmed,
                coldstart: spec.clone(),
                ..CloudSpec::default()
            };
            let mut sim = Sim::new(g.u64());
            let cloud = Cloud::new(cloud_spec, Fabric::new());
            let n = g.usize_in(1, 24);
            for _ in 0..n {
                let at = g.u64_in(0, 180_000_000);
                let func = g.u64_in(0, 3) as u32;
                let hold = g.u64_in(100_000, 40_000_000);
                let release = g.bool();
                let c = cloud.clone();
                sim.schedule_at(SimTime::from_micros(at), move |sim| {
                    let c2 = c.clone();
                    c.invoke_lambda_for(
                        sim,
                        func,
                        1_536,
                        move |sim, id| {
                            if release {
                                let c3 = c2.clone();
                                sim.schedule_in(SimDuration::from_micros(hold), move |sim| {
                                    c3.release_lambda(sim, id);
                                });
                            }
                        },
                        |_, _| {},
                    );
                });
            }
            sim.run_until(SimTime::from_secs(400));
            cloud.shutdown_all(&mut sim);
            let inputs = cloud.pool_inputs();
            let (oracle, oracle_stats) =
                oracle_replay(&spec, prewarmed, 1_536, &inputs);
            assert_logs_match(
                name,
                &cloud.pool_decisions(),
                &oracle,
                cloud.pool_stats(),
                oracle_stats,
            );
        });
    }
}

/// Replaying a live pool's *own* recorded inputs through a second live
/// pool reproduces its decisions — the log is a complete causal record
/// (nothing outside the event stream influences decisions).
#[test]
fn input_log_is_a_complete_causal_record() {
    for spec in policy_specs() {
        let name = spec.name();
        check::run(&format!("replay/{name}"), 32, |g| {
            let events = random_stream(g);
            let (first, first_stats) = drive_live(&spec, 2, 1_536, &events);
            let (second, second_stats) = drive_live(&spec, 2, 1_536, &events);
            assert_logs_match(name, &first, &second, first_stats, second_stats);
        });
    }
}
