//! Property suites over the cold-start policy plane:
//!
//! - **keepalive monotonicity** — on a fixed trace, a longer fixed
//!   keepalive never produces more cold starts;
//! - **pressure-cap invariant** — under `UnloadOnPressure` the warm
//!   pool's aggregate memory never exceeds the cap at any observation
//!   point;
//! - **hybrid convergence** — on recurrent idle-time traces the hybrid
//!   histogram's cold fraction is no worse than a fixed keepalive too
//!   short for the gap;
//! - **omniscient lower bound** — a brute-force search over every
//!   park/evict/serve choice on small traces lower-bounds every real
//!   policy's cold count.

use splitserve_cloud::{ColdStartSpec, HybridHistogramSpec, PoolEvent, WarmPool};
use splitserve_rt::check::{self, Gen};

// ---------------------------------------------------------------------
// Shared trace machinery
// ---------------------------------------------------------------------

fn drive(spec: &ColdStartSpec, prewarmed: usize, events: &[PoolEvent]) -> WarmPool {
    let mut pool = WarmPool::new(spec.build(), prewarmed, 1_536);
    for ev in events {
        match *ev {
            PoolEvent::Invoke {
                at_us,
                func,
                memory_mb,
            } => {
                pool.invoke(at_us, func, memory_mb);
            }
            PoolEvent::Release {
                at_us,
                func,
                memory_mb,
            } => pool.release(at_us, func, memory_mb),
            PoolEvent::Finalize { at_us } => pool.finalize(at_us),
        }
    }
    pool
}

/// A random bursty trace: alternating invoke/release pairs per function
/// with a mix of short intra-burst and long inter-burst gaps.
fn bursty_trace(g: &mut Gen) -> Vec<PoolEvent> {
    let mut t = 0u64;
    let mut events = Vec::new();
    let n = g.usize_in(10, 80);
    let mut outstanding: Vec<(u32, u64)> = Vec::new();
    for _ in 0..n {
        t += if g.bool() {
            g.u64_in(10_000, 3_000_000)
        } else {
            g.u64_in(5_000_000, 90_000_000)
        };
        let func = g.u64_in(0, 3) as u32;
        if !outstanding.is_empty() && g.bool() {
            let idx = g.usize_in(0, outstanding.len());
            let (f, mem) = outstanding.swap_remove(idx);
            events.push(PoolEvent::Release {
                at_us: t,
                func: f,
                memory_mb: mem,
            });
        } else {
            let mem = [512u64, 1_024, 1_536, 3_008][g.usize_in(0, 4)];
            events.push(PoolEvent::Invoke {
                at_us: t,
                func,
                memory_mb: mem,
            });
            outstanding.push((func, mem));
        }
    }
    for (f, mem) in outstanding {
        t += g.u64_in(10_000, 2_000_000);
        events.push(PoolEvent::Release {
            at_us: t,
            func: f,
            memory_mb: mem,
        });
    }
    events
}

// ---------------------------------------------------------------------
// Keepalive monotonicity
// ---------------------------------------------------------------------

/// On a fixed trace, lengthening a fixed keepalive can only turn cold
/// starts warm, never the reverse (the MRU pool is inclusive in the
/// keepalive window, like LRU caches are in capacity).
#[test]
fn keepalive_monotonicity() {
    check::run("keepalive_monotonicity", 96, |g| {
        let events = bursty_trace(g);
        let prewarmed = g.usize_in(0, 3);
        let mut windows: Vec<u64> = (0..4)
            .map(|_| g.u64_in(100_000, 200_000_000))
            .collect();
        windows.sort_unstable();
        windows.push(u64::MAX); // forever is the longest window of all
        let colds: Vec<u64> = windows
            .iter()
            .map(|k| {
                drive(
                    &ColdStartSpec::Fixed { keepalive_us: *k },
                    prewarmed,
                    &events,
                )
                .stats()
                .cold_starts
            })
            .collect();
        for w in colds.windows(2) {
            assert!(
                w[1] <= w[0],
                "longer keepalive increased cold starts: {colds:?} for windows {windows:?}"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Pressure-cap invariant
// ---------------------------------------------------------------------

/// Under `UnloadOnPressure`, aggregate warm memory never exceeds the cap
/// at any point a caller can observe the pool.
#[test]
fn pressure_cap_never_exceeded() {
    check::run("pressure_cap_never_exceeded", 96, |g| {
        let cap_mb = g.u64_in(256, 16_384);
        let spec = ColdStartSpec::UnloadOnPressure { cap_mb };
        let prewarmed = g.usize_in(0, 8);
        let mut pool = WarmPool::new(spec.build(), prewarmed, 1_536);
        assert!(
            pool.warm_memory_mb() <= cap_mb,
            "cap exceeded at seeding: {} > {cap_mb}",
            pool.warm_memory_mb()
        );
        for ev in bursty_trace(g) {
            match ev {
                PoolEvent::Invoke {
                    at_us,
                    func,
                    memory_mb,
                } => {
                    pool.invoke(at_us, func, memory_mb);
                }
                PoolEvent::Release {
                    at_us,
                    func,
                    memory_mb,
                } => pool.release(at_us, func, memory_mb),
                PoolEvent::Finalize { at_us } => pool.finalize(at_us),
            }
            assert!(
                pool.warm_memory_mb() <= cap_mb,
                "cap exceeded after {ev:?}: {} > {cap_mb}",
                pool.warm_memory_mb()
            );
        }
        pool.finalize(u64::MAX);
        assert_eq!(pool.warm_memory_mb(), 0, "finalize must empty the pool");
    });
}

// ---------------------------------------------------------------------
// Hybrid convergence on recurrent traces
// ---------------------------------------------------------------------

/// A recurrent idle-time trace for one function: `rounds` cycles of
/// invoke → hold → release → idle `gap_us` → next invoke.
fn recurrent_trace(func: u32, start_us: u64, gap_us: u64, hold_us: u64, rounds: usize) -> Vec<PoolEvent> {
    let mut t = start_us;
    let mut events = Vec::new();
    for _ in 0..rounds {
        events.push(PoolEvent::Invoke {
            at_us: t,
            func,
            memory_mb: 1_536,
        });
        t += hold_us;
        events.push(PoolEvent::Release {
            at_us: t,
            func,
            memory_mb: 1_536,
        });
        t += gap_us;
    }
    events
}

/// On a recurrent trace whose idle gap exceeds a short fixed keepalive,
/// the hybrid histogram learns the gap (prewarming just ahead of the
/// next arrival) and ends with a cold fraction no worse than — and after
/// warm-up strictly better than — the fixed policy's.
#[test]
fn hybrid_converges_to_at_most_fixed_cold_fraction() {
    check::run("hybrid_beats_short_fixed_on_recurrent", 64, |g| {
        // Gap far beyond the fixed window, well inside the histogram range.
        let gap_us = g.u64_in(20_000_000, 200_000_000);
        let hold_us = g.u64_in(100_000, 5_000_000);
        let rounds = g.usize_in(20, 40);
        let fixed_keepalive_secs = g.u64_in(1, 10);
        let events = recurrent_trace(0, 0, gap_us, hold_us, rounds);
        let fixed = drive(
            &ColdStartSpec::fixed_secs(fixed_keepalive_secs),
            0,
            &events,
        )
        .stats();
        let hybrid = drive(
            &ColdStartSpec::HybridHistogram(HybridHistogramSpec {
                fallback_keepalive_us: fixed_keepalive_secs * 1_000_000,
                ..HybridHistogramSpec::default()
            }),
            0,
            &events,
        )
        .stats();
        assert!(
            hybrid.cold_fraction() <= fixed.cold_fraction(),
            "hybrid {:.3} must not exceed fixed {:.3} (gap {gap_us}us, {rounds} rounds)",
            hybrid.cold_fraction(),
            fixed.cold_fraction()
        );
        // The gap defeats the fixed window every round; once the histogram
        // trusts its samples the hybrid must be strictly better.
        assert_eq!(fixed.cold_starts, rounds as u64, "fixed window always misses");
        assert!(
            hybrid.cold_starts < fixed.cold_starts,
            "hybrid never converged: {} colds in {rounds} rounds",
            hybrid.cold_starts
        );
    });
}

/// The histogram range in the default spec covers 256 s; gaps beyond it
/// land out-of-bounds and must push the policy onto its fixed fallback
/// rather than a garbage window — cold fraction then matches the
/// fallback exactly.
#[test]
fn hybrid_oob_degrades_to_fallback() {
    check::run("hybrid_oob_degrades_to_fallback", 32, |g| {
        let spec = HybridHistogramSpec::default();
        let oob_gap = g.u64_in(
            spec.bin_us * spec.bins as u64 + 1_000_000,
            spec.bin_us * spec.bins as u64 * 4,
        );
        let rounds = g.usize_in(12, 24);
        let events = recurrent_trace(0, 0, oob_gap, 1_000_000, rounds);
        let fallback_secs = 10;
        let hybrid = drive(
            &ColdStartSpec::HybridHistogram(HybridHistogramSpec {
                fallback_keepalive_us: fallback_secs * 1_000_000,
                ..spec
            }),
            0,
            &events,
        )
        .stats();
        let fixed = drive(&ColdStartSpec::fixed_secs(fallback_secs), 0, &events).stats();
        assert_eq!(
            hybrid.cold_starts, fixed.cold_starts,
            "out-of-bounds histogram must behave exactly like its fallback"
        );
        assert_eq!(hybrid.prewarm_starts, 0, "no prewarms from a distrusted histogram");
    });
}

// ---------------------------------------------------------------------
// Omniscient lower bound
// ---------------------------------------------------------------------

/// Minimal cold-start count over every possible park/evict/serve choice:
/// exhaustive DFS on a small trace. `cap_mb: None` removes the memory
/// constraint (the bound for uncapped policies).
fn omniscient_min_colds(events: &[PoolEvent], cap_mb: Option<u64>) -> u64 {
    fn dfs(events: &[PoolEvent], pool: &mut Vec<u64>, cap_mb: Option<u64>) -> u64 {
        let Some((ev, rest)) = events.split_first() else {
            return 0;
        };
        match *ev {
            PoolEvent::Invoke { .. } => {
                // Option A: serve cold (keep the pool for later).
                let mut best = 1 + dfs(rest, pool, cap_mb);
                // Option B: serve warm with each distinct memory size.
                let mut tried: Vec<u64> = Vec::new();
                for i in 0..pool.len() {
                    let mem = pool[i];
                    if tried.contains(&mem) {
                        continue;
                    }
                    tried.push(mem);
                    let removed = pool.swap_remove(i);
                    best = best.min(dfs(rest, pool, cap_mb));
                    pool.push(removed);
                    let last = pool.len() - 1;
                    pool.swap(i, last);
                }
                best
            }
            PoolEvent::Release { memory_mb, .. } => {
                // Option A: drop the returning container.
                let mut best = dfs(rest, pool, cap_mb);
                // Option B: park it, then (under a cap) evict any subset
                // that restores feasibility.
                pool.push(memory_mb);
                match cap_mb {
                    None => best = best.min(dfs(rest, pool, cap_mb)),
                    Some(cap) => {
                        if pool.iter().sum::<u64>() <= cap {
                            best = best.min(dfs(rest, pool, cap_mb));
                        } else {
                            // Evict subsets until feasible: enumerate all
                            // subsets of the (small) pool.
                            let n = pool.len();
                            for mask in 0u32..(1 << n) {
                                let kept: Vec<u64> = (0..n)
                                    .filter(|i| mask & (1 << i) != 0)
                                    .map(|i| pool[i])
                                    .collect();
                                if kept.iter().sum::<u64>() <= cap {
                                    let mut sub = kept;
                                    best = best.min(dfs(rest, &mut sub, cap_mb));
                                }
                            }
                        }
                    }
                }
                pool.pop();
                best
            }
            PoolEvent::Finalize { .. } => dfs(rest, pool, cap_mb),
        }
    }
    dfs(events, &mut Vec::new(), cap_mb)
}

/// A small random trace (≤ 10 events) keeps the DFS exhaustive.
fn small_trace(g: &mut Gen) -> Vec<PoolEvent> {
    let mut t = 0u64;
    let mut outstanding = 0usize;
    let n = g.usize_in(2, 10);
    let mut events = Vec::new();
    for _ in 0..n {
        t += g.u64_in(100_000, 60_000_000);
        let mem = [512u64, 1_536, 3_008][g.usize_in(0, 3)];
        if outstanding > 0 && g.bool() {
            events.push(PoolEvent::Release {
                at_us: t,
                func: 0,
                memory_mb: mem,
            });
            outstanding -= 1;
        } else {
            events.push(PoolEvent::Invoke {
                at_us: t,
                func: 0,
                memory_mb: mem,
            });
            outstanding += 1;
        }
    }
    events
}

/// Every real policy's cold count is lower-bounded by the omniscient
/// brute force (uncapped bound for uncapped policies, same-cap bound for
/// the pressure policy), and the legacy forever-pool achieves the
/// uncapped bound exactly.
#[test]
fn omniscient_lower_bound_on_small_traces() {
    check::run("omniscient_lower_bound", 96, |g| {
        let events = small_trace(g);
        let lb = omniscient_min_colds(&events, None);

        let forever = drive(&ColdStartSpec::forever(), 0, &events).stats();
        assert_eq!(
            forever.cold_starts, lb,
            "park-everything-forever must achieve the uncapped optimum"
        );

        for spec in [
            ColdStartSpec::fixed_secs(g.u64_in(1, 120)),
            ColdStartSpec::HybridHistogram(HybridHistogramSpec {
                min_samples: g.u64_in(2, 8),
                ..HybridHistogramSpec::default()
            }),
        ] {
            let got = drive(&spec, 0, &events).stats().cold_starts;
            assert!(
                got >= lb,
                "{} beat the omniscient bound: {got} < {lb}",
                spec.name()
            );
        }

        let cap_mb = g.u64_in(512, 8_192);
        let capped_lb = omniscient_min_colds(&events, Some(cap_mb));
        assert!(capped_lb >= lb, "a cap can only worsen the optimum");
        let pressure = drive(&ColdStartSpec::UnloadOnPressure { cap_mb }, 0, &events)
            .stats()
            .cold_starts;
        assert!(
            pressure >= capped_lb,
            "unload-on-pressure beat its omniscient bound: {pressure} < {capped_lb}"
        );
    });
}
