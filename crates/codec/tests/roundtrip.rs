//! Property-based roundtrip tests: for every value the format can
//! describe, `from_bytes(to_bytes(v)) == v`, and arbitrary garbage input
//! never panics the decoder.

use std::collections::BTreeMap;

use splitserve_codec::{Decode, Encode, Error, Result};
use splitserve_rt::check::{self, Gen};

#[derive(PartialEq, Debug, Clone)]
enum Record {
    Empty,
    Scalar(i64),
    Pair(u64, f64),
    Labeled { name: String, values: Vec<f32> },
}

impl Encode for Record {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Record::Empty => 0u32.encode(out),
            Record::Scalar(v) => {
                1u32.encode(out);
                v.encode(out);
            }
            Record::Pair(k, v) => {
                2u32.encode(out);
                k.encode(out);
                v.encode(out);
            }
            Record::Labeled { name, values } => {
                3u32.encode(out);
                name.encode(out);
                values.encode(out);
            }
        }
    }
}

impl Decode for Record {
    fn decode(input: &mut &[u8]) -> Result<Record> {
        Ok(match u32::decode(input)? {
            0 => Record::Empty,
            1 => Record::Scalar(Decode::decode(input)?),
            2 => Record::Pair(Decode::decode(input)?, Decode::decode(input)?),
            3 => Record::Labeled {
                name: Decode::decode(input)?,
                values: Decode::decode(input)?,
            },
            i => return Err(Error::InvalidVariant(i.into())),
        })
    }
}

fn arb_record(g: &mut Gen) -> Record {
    match g.usize_in(0, 4) {
        0 => Record::Empty,
        1 => Record::Scalar(g.rng().gen()),
        2 => Record::Pair(g.u64(), {
            // NaN breaks PartialEq; resample to a non-NaN pattern.
            let mut f = g.f64_bits();
            while f.is_nan() {
                f = g.f64_bits();
            }
            f
        }),
        _ => Record::Labeled {
            name: g.lowercase(0, 13),
            values: (0..g.usize_in(0, 8))
                .map(|_| {
                    let mut f = g.f32_bits();
                    while f.is_nan() {
                        f = g.f32_bits();
                    }
                    f
                })
                .collect(),
        },
    }
}

fn roundtrip<T: Encode + Decode>(v: &T) -> T {
    let bytes = splitserve_codec::to_bytes(v).expect("encode");
    splitserve_codec::from_bytes(&bytes).expect("decode")
}

#[test]
fn u64_roundtrips() {
    check::run("u64_roundtrips", 256, |g| {
        let v = g.u64();
        assert_eq!(roundtrip(&v), v);
    });
}

#[test]
fn i64_roundtrips() {
    check::run("i64_roundtrips", 256, |g| {
        let v: i64 = g.rng().gen();
        assert_eq!(roundtrip(&v), v);
    });
}

#[test]
fn f64_roundtrips_bitwise() {
    check::run("f64_roundtrips_bitwise", 256, |g| {
        let v = g.f64_bits();
        assert_eq!(roundtrip(&v).to_bits(), v.to_bits());
    });
}

#[test]
fn strings_roundtrip() {
    check::run("strings_roundtrip", 256, |g| {
        let s = g.string(0, 65);
        assert_eq!(roundtrip(&s), s);
    });
}

#[test]
fn byte_vectors_roundtrip() {
    check::run("byte_vectors_roundtrip", 256, |g| {
        let v = g.bytes(0, 256);
        assert_eq!(roundtrip(&v), v);
    });
}

#[test]
fn maps_roundtrip() {
    check::run("maps_roundtrip", 128, |g| {
        let m: BTreeMap<u32, String> = (0..g.usize_in(0, 32))
            .map(|_| (g.rng().gen(), g.lowercase(0, 9)))
            .collect();
        assert_eq!(roundtrip(&m), m);
    });
}

#[test]
fn records_roundtrip() {
    check::run("records_roundtrip", 128, |g| {
        let r = g.vec(0, 32, arb_record);
        assert_eq!(roundtrip(&r), r);
    });
}

#[test]
fn options_and_nesting_roundtrip() {
    check::run("options_and_nesting_roundtrip", 128, |g| {
        let v: Vec<Option<(u16, Vec<i32>)>> = g.vec(0, 16, |g| {
            if g.bool() {
                Some((g.rng().gen(), g.vec(0, 4, |g| g.rng().gen())))
            } else {
                None
            }
        });
        assert_eq!(roundtrip(&v), v);
    });
}

#[test]
fn nested_map_of_records_roundtrips() {
    check::run("nested_map_of_records_roundtrips", 64, |g| {
        let m: BTreeMap<String, Vec<Record>> = (0..g.usize_in(0, 8))
            .map(|_| (g.lowercase(1, 5), g.vec(0, 4, arb_record)))
            .collect();
        let got: BTreeMap<String, Vec<Record>> = roundtrip(&m);
        assert_eq!(got, m);
    });
}

/// Arbitrary garbage input never panics — it either decodes or errors.
#[test]
fn fuzz_decoding_never_panics() {
    check::run("fuzz_decoding_never_panics", 512, |g| {
        let bytes = g.bytes(0, 128);
        let _: Result<Vec<Record>> = splitserve_codec::from_bytes(&bytes);
        let _: Result<(String, u64, f64)> = splitserve_codec::from_bytes(&bytes);
        let _: Result<BTreeMap<u32, String>> = splitserve_codec::from_bytes(&bytes);
    });
}
