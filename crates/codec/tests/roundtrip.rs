//! Property-based roundtrip tests: for every value serde can describe,
//! `from_bytes(to_bytes(v)) == v`.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Record {
    Empty,
    Scalar(i64),
    Pair(u64, f64),
    Labeled { name: String, values: Vec<f32> },
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        Just(Record::Empty),
        any::<i64>().prop_map(Record::Scalar),
        (any::<u64>(), any::<f64>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan()))
            .prop_map(|(k, v)| Record::Pair(k, v)),
        (
            "[a-z]{0,12}",
            prop::collection::vec(
                any::<f32>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan()),
                0..8
            )
        )
            .prop_map(|(name, values)| Record::Labeled { name, values }),
    ]
}

fn roundtrip<T>(v: &T) -> T
where
    T: Serialize + for<'de> Deserialize<'de>,
{
    let bytes = splitserve_codec::to_bytes(v).expect("encode");
    splitserve_codec::from_bytes(&bytes).expect("decode")
}

proptest! {
    #[test]
    fn u64_roundtrips(v in any::<u64>()) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn i64_roundtrips(v in any::<i64>()) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn f64_roundtrips_bitwise(v in any::<f64>()) {
        prop_assert_eq!(roundtrip(&v).to_bits(), v.to_bits());
    }

    #[test]
    fn strings_roundtrip(s in "\\PC{0,64}") {
        prop_assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn byte_vectors_roundtrip(v in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn maps_roundtrip(m in prop::collection::btree_map(any::<u32>(), "[a-z]{0,8}", 0..32)) {
        prop_assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn records_roundtrip(r in prop::collection::vec(arb_record(), 0..32)) {
        prop_assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn options_and_nesting_roundtrip(v in prop::collection::vec(
        prop::option::of((any::<u16>(), prop::collection::vec(any::<i32>(), 0..4))), 0..16
    )) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn nested_map_of_records_roundtrips(
        m in prop::collection::btree_map("[a-z]{1,4}", prop::collection::vec(arb_record(), 0..4), 0..8)
    ) {
        let got: BTreeMap<String, Vec<Record>> = roundtrip(&m);
        prop_assert_eq!(got, m);
    }

    /// Arbitrary garbage input never panics — it either decodes or errors.
    #[test]
    fn fuzz_decoding_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _: Result<Vec<Record>, _> = splitserve_codec::from_bytes(&bytes);
        let _: Result<(String, u64, f64), _> = splitserve_codec::from_bytes(&bytes);
        let _: Result<BTreeMap<u32, String>, _> = splitserve_codec::from_bytes(&bytes);
    }
}
