//! LEB128 variable-length integers with zigzag encoding for signed values.

use crate::error::{Error, Result};

/// Appends `v` to `out` as an LEB128 varint (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-encoded so small-magnitude negatives stay short.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Encoded length of `v` as an LEB128 varint, without writing anything
/// (the size-hint half of [`write_u64`]).
pub fn len_u64(v: u64) -> usize {
    // 7 significant bits per byte; zero still takes one byte.
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Encoded length of `v` as a zigzag varint.
pub fn len_i64(v: i64) -> usize {
    len_u64(zigzag(v))
}

/// Maps signed to unsigned preserving small magnitudes: 0,-1,1,-2 → 0,1,2,3.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads an LEB128 varint from the front of `input`, advancing it.
///
/// # Errors
///
/// [`Error::UnexpectedEof`] if input ends mid-varint;
/// [`Error::VarintOverflow`] if more than 64 bits are encoded.
pub fn read_u64(input: &mut &[u8]) -> Result<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or(Error::UnexpectedEof)?;
        *input = rest;
        if shift == 63 && byte > 1 {
            return Err(Error::VarintOverflow);
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::VarintOverflow);
        }
    }
}

/// Reads a zigzag-encoded signed varint.
///
/// # Errors
///
/// Same as [`read_u64`].
pub fn read_i64(input: &mut &[u8]) -> Result<i64> {
    read_u64(input).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut s = buf.as_slice();
        let got = read_u64(&mut s).expect("roundtrip");
        assert!(s.is_empty(), "leftover bytes");
        got
    }

    #[test]
    fn u64_roundtrip_edges() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip_u(v), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn len_matches_write_exactly() {
        let edges = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for v in edges {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(len_u64(v), buf.len(), "len_u64({v})");
        }
        for v in [0i64, -1, 1, 63, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(len_i64(v), buf.len(), "len_i64({v})");
        }
    }

    #[test]
    fn zigzag_pairs() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        for v in [-5i64, 0, 5, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn i64_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_i64(&mut s).expect("roundtrip"), v);
        }
    }

    #[test]
    fn eof_mid_varint_errors() {
        let mut s: &[u8] = &[0x80];
        assert_eq!(read_u64(&mut s), Err(Error::UnexpectedEof));
    }

    #[test]
    fn overlong_varint_errors() {
        // 11 continuation bytes cannot fit in 64 bits.
        let bytes = [0xffu8; 11];
        let mut s = bytes.as_slice();
        assert_eq!(read_u64(&mut s), Err(Error::VarintOverflow));
    }
}
