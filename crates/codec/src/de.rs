//! The deserializer half of the format.

use serde::de::{self, DeserializeSeed, Visitor};

use crate::error::{Error, Result};
use crate::varint;

/// Deserializes a value of type `T` from `bytes`, requiring the whole input
/// to be consumed.
///
/// # Errors
///
/// Returns an error on malformed input or if trailing bytes remain.
///
/// # Examples
///
/// ```
/// let bytes = splitserve_codec::to_bytes(&vec![1u8, 2, 3]).expect("encode");
/// let v: Vec<u8> = splitserve_codec::from_bytes(&bytes).expect("decode");
/// assert_eq!(v, vec![1, 2, 3]);
/// ```
pub fn from_bytes<'de, T: de::Deserialize<'de>>(bytes: &'de [u8]) -> Result<T> {
    let mut de = Deserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(Error::TrailingBytes(de.input.len()))
    }
}

/// Deserializes a value from the front of `*bytes`, advancing the slice.
/// Used to stream records out of a shuffle block.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn from_bytes_seq<'de, T: de::Deserialize<'de>>(bytes: &mut &'de [u8]) -> Result<T> {
    let mut de = Deserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    *bytes = de.input;
    Ok(value)
}

struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(Error::UnexpectedEof);
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn read_byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn read_u64(&mut self) -> Result<u64> {
        varint::read_u64(&mut self.input)
    }

    fn read_i64(&mut self) -> Result<i64> {
        varint::read_i64(&mut self.input)
    }

    fn read_len(&mut self) -> Result<usize> {
        let n = self.read_u64()?;
        // A length can never exceed the remaining bytes (each element
        // occupies at least one byte except zero-sized ones, which are
        // bounded elsewhere); this guards against absurd allocations.
        if n > (self.input.len() as u64).saturating_mul(8).saturating_add(64) {
            return Err(Error::LengthOverflow(n));
        }
        Ok(n as usize)
    }
}

macro_rules! de_signed {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.read_i64()?;
            let v = <$ty>::try_from(v)
                .map_err(|_| Error::Message(format!("integer {v} out of range")))?;
            visitor.$visit(v)
        }
    };
}

macro_rules! de_unsigned {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let v = self.read_u64()?;
            let v = <$ty>::try_from(v)
                .map_err(|_| Error::Message(format!("integer {v} out of range")))?;
            visitor.$visit(v)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::AnyUnsupported)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::AnyUnsupported)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.read_byte()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(Error::InvalidBool(b)),
        }
    }

    de_signed!(deserialize_i8, visit_i8, i8);
    de_signed!(deserialize_i16, visit_i16, i16);
    de_signed!(deserialize_i32, visit_i32, i32);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_i64()?;
        visitor.visit_i64(v)
    }

    de_unsigned!(deserialize_u8, visit_u8, u8);
    de_unsigned!(deserialize_u16, visit_u16, u16);
    de_unsigned!(deserialize_u32, visit_u32, u32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.read_u64()?;
        visitor.visit_u64(v)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let b = self.take(4)?;
        visitor.visit_f32(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let b = self.take(8)?;
        visitor.visit_f64(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let scalar = self.read_u64()?;
        let scalar =
            u32::try_from(scalar).map_err(|_| Error::InvalidChar(u32::MAX))?;
        let c = char::from_u32(scalar).ok_or(Error::InvalidChar(scalar))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.read_byte()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(Error::InvalidOptionTag(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.read_len()?;
        visitor.visit_map(Counted { de: self, left: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self,
            left: fields.len(),
        })
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(Error::AnyUnsupported)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self)> {
        let index = self.de.read_u64()?;
        let index = u32::try_from(index)
            .map_err(|_| Error::Message(format!("variant index {index} out of range")))?;
        let value = seed.deserialize(de::value::U32Deserializer::<Error>::new(index))?;
        Ok((value, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self.de, left: len })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_seq(Counted {
            de: self.de,
            left: fields.len(),
        })
    }
}
