//! The decoding half of the format: the [`Decode`] trait and its impls.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};

use crate::error::{Error, Result};
use crate::varint;

/// A value that can be read back from the SplitServe wire format.
///
/// `decode` consumes from the front of the slice, advancing it past the
/// value — so records can be streamed out of a shuffle block back to back.
pub trait Decode: Sized {
    /// Decodes one value from the front of `input`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns an error on truncated or malformed input. Implementations
    /// must never panic on arbitrary bytes.
    fn decode(input: &mut &[u8]) -> Result<Self>;
}

/// Deserializes a value of type `T` from `bytes`, requiring the whole input
/// to be consumed.
///
/// # Errors
///
/// Returns an error on malformed input or if trailing bytes remain.
///
/// # Examples
///
/// ```
/// let bytes = splitserve_codec::to_bytes(&vec![1u8, 2, 3]).expect("encode");
/// let v: Vec<u8> = splitserve_codec::from_bytes(&bytes).expect("decode");
/// assert_eq!(v, vec![1, 2, 3]);
/// ```
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T> {
    let mut input = bytes;
    let value = T::decode(&mut input)?;
    if input.is_empty() {
        Ok(value)
    } else {
        Err(Error::TrailingBytes(input.len()))
    }
}

/// Deserializes a value from the front of `*bytes`, advancing the slice.
/// Used to stream records out of a shuffle block.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn from_bytes_seq<T: Decode>(bytes: &mut &[u8]) -> Result<T> {
    T::decode(bytes)
}

/// Reads a length prefix, rejecting values implausibly large for the
/// remaining input (each element occupies at least one byte except
/// zero-sized ones, which are bounded elsewhere); this guards against
/// absurd allocations from corrupt input.
pub(crate) fn read_len(input: &mut &[u8]) -> Result<usize> {
    let n = varint::read_u64(input)?;
    if n > (input.len() as u64).saturating_mul(8).saturating_add(64) {
        return Err(Error::LengthOverflow(n));
    }
    Ok(n as usize)
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if input.len() < n {
        return Err(Error::UnexpectedEof);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

// ----- primitives ------------------------------------------------------

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<bool> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::InvalidBool(b)),
        }
    }
}

macro_rules! decode_unsigned {
    ($($ty:ty),*) => {$(
        impl Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<$ty> {
                let v = varint::read_u64(input)?;
                <$ty>::try_from(v)
                    .map_err(|_| Error::Message(format!("integer {v} out of range")))
            }
        }
    )*};
}
decode_unsigned!(u8, u16, u32, u64, usize);

macro_rules! decode_signed {
    ($($ty:ty),*) => {$(
        impl Decode for $ty {
            fn decode(input: &mut &[u8]) -> Result<$ty> {
                let v = varint::read_i64(input)?;
                <$ty>::try_from(v)
                    .map_err(|_| Error::Message(format!("integer {v} out of range")))
            }
        }
    )*};
}
decode_signed!(i8, i16, i32, i64, isize);

impl Decode for f32 {
    fn decode(input: &mut &[u8]) -> Result<f32> {
        let b = take(input, 4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Decode for f64 {
    fn decode(input: &mut &[u8]) -> Result<f64> {
        let b = take(input, 8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl Decode for char {
    fn decode(input: &mut &[u8]) -> Result<char> {
        let scalar = varint::read_u64(input)?;
        let scalar = u32::try_from(scalar).map_err(|_| Error::InvalidChar(u32::MAX))?;
        char::from_u32(scalar).ok_or(Error::InvalidChar(scalar))
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<String> {
        let len = read_len(input)?;
        let bytes = take(input, len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| Error::InvalidUtf8)
    }
}

// ----- compound types --------------------------------------------------

impl<T: Decode> Decode for Box<T> {
    fn decode(input: &mut &[u8]) -> Result<Box<T>> {
        T::decode(input).map(Box::new)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Option<T>> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => T::decode(input).map(Some),
            b => Err(Error::InvalidOptionTag(b)),
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(input: &mut &[u8]) -> Result<Vec<T>> {
        let len = read_len(input)?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(input: &mut &[u8]) -> Result<BTreeMap<K, V>> {
        let len = read_len(input)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Decode + Hash + Eq, V: Decode, S: BuildHasher + Default> Decode for HashMap<K, V, S> {
    fn decode(input: &mut &[u8]) -> Result<HashMap<K, V, S>> {
        let len = read_len(input)?;
        let mut out = HashMap::with_hasher(S::default());
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl Decode for () {
    fn decode(_input: &mut &[u8]) -> Result<()> {
        Ok(())
    }
}

macro_rules! decode_tuple {
    ($($name:ident),+) => {
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(input: &mut &[u8]) -> Result<Self> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    };
}
decode_tuple!(A);
decode_tuple!(A, B);
decode_tuple!(A, B, C);
decode_tuple!(A, B, C, D);
decode_tuple!(A, B, C, D, E);
decode_tuple!(A, B, C, D, E, F);
decode_tuple!(A, B, C, D, E, F, G);
decode_tuple!(A, B, C, D, E, F, G, H);
