//! # splitserve-codec — compact binary shuffle format
//!
//! The wire format used to serialize shuffle records into storage blocks in
//! the SplitServe reproduction. It is a bincode-style, non-self-describing
//! binary format: LEB128 varints for integers (zigzag for signed),
//! little-endian IEEE floats, length-prefixed strings/bytes/sequences, and
//! variant indices for enums.
//!
//! The format is defined by the in-tree [`Encode`]/[`Decode`] traits rather
//! than serde: the hermetic build has no registry access, and pinning both
//! the data model and the byte layout in-tree guarantees shuffle blocks are
//! byte-for-byte reproducible across toolchains. Plain record structs get
//! their impls from [`impl_record!`]; enums implement the traits by hand
//! (variant index as a varint, then the payload fields in order).
//!
//! # Examples
//!
//! ```
//! #[derive(PartialEq, Debug)]
//! struct Edge {
//!     src: u64,
//!     dst: u64,
//!     weight: f64,
//! }
//! splitserve_codec::impl_record!(Edge { src, dst, weight });
//!
//! # fn main() -> Result<(), splitserve_codec::Error> {
//! let e = Edge { src: 3, dst: 7, weight: 0.5 };
//! let bytes = splitserve_codec::to_bytes(&e)?;
//! let back: Edge = splitserve_codec::from_bytes(&bytes)?;
//! assert_eq!(back, e);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod de;
mod error;
mod ser;
mod varint;

pub use de::{from_bytes, from_bytes_seq, Decode};
pub use error::{Error, Result};
pub use ser::{to_bytes, to_writer, Encode};

/// Implements [`Encode`] and [`Decode`] for a struct with named fields by
/// encoding the fields in declaration order — the same layout serde's
/// derive produced for this format, so records stay wire-compatible.
///
/// # Examples
///
/// ```
/// struct Row { key: u64, score: f64, tags: Vec<String> }
/// splitserve_codec::impl_record!(Row { key, score, tags });
/// ```
#[macro_export]
macro_rules! impl_record {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Encode for $name {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                $( $crate::Encode::encode(&self.$field, out); )*
            }
            fn encoded_len(&self) -> usize {
                0 $( + $crate::Encode::encoded_len(&self.$field) )*
            }
        }
        impl $crate::Decode for $name {
            fn decode(input: &mut &[u8]) -> $crate::Result<Self> {
                ::std::result::Result::Ok($name {
                    $( $field: $crate::Decode::decode(input)?, )*
                })
            }
        }
    };
}

/// Encoded size of `value` in bytes, computed arithmetically via
/// [`Encode::encoded_len`] — no serialization happens.
///
/// # Errors
///
/// Infallible today (kept `Result` so call sites and future format
/// revisions keep a stable signature).
pub fn encoded_len<T: Encode + ?Sized>(value: &T) -> Result<usize> {
    Ok(value.encoded_len())
}

#[cfg(test)]
mod tests {
    use crate::{Decode, Encode, Error, Result};
    use std::collections::BTreeMap;

    fn roundtrip<T>(v: &T)
    where
        T: Encode + Decode + PartialEq + std::fmt::Debug,
    {
        let bytes = crate::to_bytes(v).expect("encode");
        let back: T = crate::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-1i32);
        roundtrip(&3.25f32);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&'λ');
        roundtrip(&"hello world".to_string());
        roundtrip(&String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u32>::new());
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&(1u8, "pair".to_string(), 2.5f64));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        roundtrip(&m);
        roundtrip(&vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[derive(PartialEq, Debug)]
    enum Shape {
        Unit,
        New(u32),
        Tuple(u32, String),
        Struct { x: f64, y: f64 },
    }

    // The hand-written pattern for enums: variant index, then payload.
    impl Encode for Shape {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                Shape::Unit => 0u32.encode(out),
                Shape::New(a) => {
                    1u32.encode(out);
                    a.encode(out);
                }
                Shape::Tuple(a, b) => {
                    2u32.encode(out);
                    a.encode(out);
                    b.encode(out);
                }
                Shape::Struct { x, y } => {
                    3u32.encode(out);
                    x.encode(out);
                    y.encode(out);
                }
            }
        }
    }
    impl Decode for Shape {
        fn decode(input: &mut &[u8]) -> Result<Shape> {
            Ok(match u32::decode(input)? {
                0 => Shape::Unit,
                1 => Shape::New(Decode::decode(input)?),
                2 => Shape::Tuple(Decode::decode(input)?, Decode::decode(input)?),
                3 => Shape::Struct {
                    x: Decode::decode(input)?,
                    y: Decode::decode(input)?,
                },
                i => return Err(Error::InvalidVariant(i.into())),
            })
        }
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(&Shape::Unit);
        roundtrip(&Shape::New(7));
        roundtrip(&Shape::Tuple(1, "t".into()));
        roundtrip(&Shape::Struct { x: 1.0, y: -2.0 });
        roundtrip(&vec![Shape::Unit, Shape::New(1)]);
    }

    #[test]
    fn unknown_variant_rejected() {
        let bytes = crate::to_bytes(&9u32).expect("encode");
        let r: Result<Shape> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(Error::InvalidVariant(9))));
    }

    #[derive(PartialEq, Debug)]
    struct Nested {
        id: u64,
        tags: Vec<String>,
        inner: Option<Box<Nested>>,
    }
    crate::impl_record!(Nested { id, tags, inner });

    #[test]
    fn nested_structs_roundtrip() {
        roundtrip(&Nested {
            id: 1,
            tags: vec!["a".into(), "b".into()],
            inner: Some(Box::new(Nested {
                id: 2,
                tags: vec![],
                inner: None,
            })),
        });
    }

    #[test]
    fn varints_keep_small_records_small() {
        // A (u64 key, f64 value) record with a small key: 1 + 8 bytes.
        let n = crate::encoded_len(&(5u64, 1.0f64)).expect("len");
        assert_eq!(n, 9);
    }

    #[test]
    fn encoded_len_is_exact_for_every_impl() {
        fn assert_exact<T: Encode + std::fmt::Debug>(v: &T) {
            let bytes = crate::to_bytes(v).expect("encode");
            assert_eq!(v.encoded_len(), bytes.len(), "encoded_len({v:?})");
        }
        assert_exact(&true);
        assert_exact(&0u8);
        assert_exact(&127u64);
        assert_exact(&128u64);
        assert_exact(&u64::MAX);
        assert_exact(&-1i32);
        assert_exact(&i64::MIN);
        assert_exact(&3.25f32);
        assert_exact(&f64::NAN);
        assert_exact(&'λ');
        assert_exact(&"hello".to_string());
        assert_exact(&vec![1u32, 200, 40_000]);
        assert_exact(&Vec::<u64>::new());
        assert_exact(&Some("x".to_string()));
        assert_exact(&Option::<u8>::None);
        assert_exact(&(5u64, 1.0f64, "k".to_string()));
        assert_exact(&());
        let mut m = BTreeMap::new();
        m.insert(1u32, vec![9u8; 3]);
        assert_exact(&m);
        // Hand-written impls without an override go through the default
        // (measure-by-encoding) fallback and must agree too.
        assert_exact(&Shape::Tuple(1, "t".into()));
        assert_exact(&Shape::Unit);
        // impl_record! structs compute arithmetically.
        assert_exact(&Nested {
            id: 9,
            tags: vec!["a".into()],
            inner: Some(Box::new(Nested {
                id: 1,
                tags: vec![],
                inner: None,
            })),
        });
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = crate::to_bytes(&1u32).expect("encode");
        bytes.push(0);
        let r: Result<u32> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(Error::TrailingBytes(1))));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = crate::to_bytes("hello").expect("encode");
        let r: Result<String> = crate::from_bytes(&bytes[..bytes.len() - 1]);
        assert!(matches!(r, Err(Error::UnexpectedEof)));
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        // Sequence claiming u64::MAX/2 elements with 2 bytes of input.
        let mut bytes = Vec::new();
        crate::varint::write_u64(&mut bytes, u64::MAX / 2);
        let r: Result<Vec<u8>> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(Error::LengthOverflow(_))));
    }

    #[test]
    fn streaming_decode_advances() {
        let mut buf = Vec::new();
        crate::to_writer(&mut buf, &(1u32, 2u32)).expect("encode");
        crate::to_writer(&mut buf, &(3u32, 4u32)).expect("encode");
        let mut slice = buf.as_slice();
        let a: (u32, u32) = crate::from_bytes_seq(&mut slice).expect("decode");
        let b: (u32, u32) = crate::from_bytes_seq(&mut slice).expect("decode");
        assert_eq!(a, (1, 2));
        assert_eq!(b, (3, 4));
        assert!(slice.is_empty());
    }

    #[test]
    fn invalid_bool_rejected() {
        let r: Result<bool> = crate::from_bytes(&[2]);
        assert!(matches!(r, Err(Error::InvalidBool(2))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // len=2, bytes = invalid UTF-8
        let bytes = [2u8, 0xff, 0xfe];
        let r: Result<String> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(Error::InvalidUtf8)));
    }
}
