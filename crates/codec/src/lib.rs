//! # splitserve-codec — compact binary serde format
//!
//! The wire format used to serialize shuffle records into storage blocks in
//! the SplitServe reproduction. It is a bincode-style, non-self-describing
//! binary format: LEB128 varints for integers (zigzag for signed),
//! little-endian IEEE floats, length-prefixed strings/bytes/sequences, and
//! variant indices for enums. It exists because no serde *format* crate is
//! available in the offline dependency set.
//!
//! # Examples
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Edge {
//!     src: u64,
//!     dst: u64,
//!     weight: f64,
//! }
//!
//! # fn main() -> Result<(), splitserve_codec::Error> {
//! let e = Edge { src: 3, dst: 7, weight: 0.5 };
//! let bytes = splitserve_codec::to_bytes(&e)?;
//! let back: Edge = splitserve_codec::from_bytes(&bytes)?;
//! assert_eq!(back, e);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod de;
mod error;
mod ser;
mod varint;

pub use de::{from_bytes, from_bytes_seq};
pub use error::{Error, Result};
pub use ser::{to_bytes, to_writer};

/// Encoded size of `value` in bytes, computed by serializing it.
///
/// # Errors
///
/// Same as [`to_bytes`].
pub fn encoded_len<T: serde::Serialize + ?Sized>(value: &T) -> Result<usize> {
    to_bytes(value).map(|b| b.len())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T>(v: &T)
    where
        T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
    {
        let bytes = crate::to_bytes(v).expect("encode");
        let back: T = crate::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-1i32);
        roundtrip(&3.25f32);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&'λ');
        roundtrip(&"hello world".to_string());
        roundtrip(&String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u32>::new());
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&(1u8, "pair".to_string(), 2.5f64));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        roundtrip(&m);
        roundtrip(&vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Shape {
        Unit,
        New(u32),
        Tuple(u32, String),
        Struct { x: f64, y: f64 },
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(&Shape::Unit);
        roundtrip(&Shape::New(7));
        roundtrip(&Shape::Tuple(1, "t".into()));
        roundtrip(&Shape::Struct { x: 1.0, y: -2.0 });
        roundtrip(&vec![Shape::Unit, Shape::New(1)]);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u64,
        tags: Vec<String>,
        inner: Option<Box<Nested>>,
    }

    #[test]
    fn nested_structs_roundtrip() {
        roundtrip(&Nested {
            id: 1,
            tags: vec!["a".into(), "b".into()],
            inner: Some(Box::new(Nested {
                id: 2,
                tags: vec![],
                inner: None,
            })),
        });
    }

    #[test]
    fn varints_keep_small_records_small() {
        // A (u64 key, f64 value) record with a small key: 1 + 8 bytes.
        let n = crate::encoded_len(&(5u64, 1.0f64)).expect("len");
        assert_eq!(n, 9);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = crate::to_bytes(&1u32).expect("encode");
        bytes.push(0);
        let r: Result<u32, _> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(crate::Error::TrailingBytes(1))));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = crate::to_bytes(&"hello").expect("encode");
        let r: Result<String, _> = crate::from_bytes(&bytes[..bytes.len() - 1]);
        assert!(matches!(r, Err(crate::Error::UnexpectedEof)));
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        // Sequence claiming u64::MAX elements with 2 bytes of input.
        let mut bytes = Vec::new();
        super::varint_write_for_test(&mut bytes, u64::MAX / 2);
        let r: Result<Vec<u8>, _> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(crate::Error::LengthOverflow(_))));
    }

    #[test]
    fn streaming_decode_advances() {
        let mut buf = Vec::new();
        crate::to_writer(&mut buf, &(1u32, 2u32)).expect("encode");
        crate::to_writer(&mut buf, &(3u32, 4u32)).expect("encode");
        let mut slice = buf.as_slice();
        let a: (u32, u32) = crate::from_bytes_seq(&mut slice).expect("decode");
        let b: (u32, u32) = crate::from_bytes_seq(&mut slice).expect("decode");
        assert_eq!(a, (1, 2));
        assert_eq!(b, (3, 4));
        assert!(slice.is_empty());
    }

    #[test]
    fn invalid_bool_rejected() {
        let r: Result<bool, _> = crate::from_bytes(&[2]);
        assert!(matches!(r, Err(crate::Error::InvalidBool(2))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // len=2, bytes = invalid UTF-8
        let bytes = [2u8, 0xff, 0xfe];
        let r: Result<String, _> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(crate::Error::InvalidUtf8)));
    }
}

#[cfg(test)]
pub(crate) fn varint_write_for_test(out: &mut Vec<u8>, v: u64) {
    varint::write_u64(out, v)
}
