//! The encoding half of the format: the [`Encode`] trait and its impls for
//! primitives, tuples, collections and smart pointers.

use std::collections::{BTreeMap, HashMap};

use crate::error::Result;
use crate::varint;

/// A value that can be written to the SplitServe wire format.
///
/// Encoding is infallible: every encodable value is already in memory with
/// a known shape, so the only possible failures (unknown-length sequences
/// in serde's data model) cannot arise.
///
/// Implement via [`crate::impl_record!`] for plain structs; by hand for
/// enums (write the variant index as a `u32`, then the payload).
pub trait Encode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// The exact number of bytes [`encode`](Encode::encode) will append.
    ///
    /// The shuffle write path sums this over a bucket's records to size
    /// its output buffer exactly, so encoding never reallocates and
    /// blocks carry no spare capacity. Every impl in this crate computes
    /// the length arithmetically; the default is a correct fallback for
    /// hand-written impls (it encodes into pooled scratch and measures),
    /// so `encoded_len == encode'd byte count` is an invariant, not a
    /// hint.
    fn encoded_len(&self) -> usize {
        let mut scratch = splitserve_rt::pool::take(0);
        self.encode(&mut scratch);
        let n = scratch.len();
        splitserve_rt::pool::give(scratch);
        n
    }
}

/// Serializes `value` into a fresh byte vector.
///
/// # Errors
///
/// Infallible today (kept `Result` so call sites and future format
/// revisions keep a stable signature).
///
/// # Examples
///
/// ```
/// let bytes = splitserve_codec::to_bytes(&(1u32, "hi")).expect("encode");
/// let back: (u32, String) = splitserve_codec::from_bytes(&bytes).expect("decode");
/// assert_eq!(back, (1, "hi".to_string()));
/// ```
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    value.encode(&mut out);
    Ok(out)
}

/// Serializes `value`, appending to an existing buffer (zero-copy batching
/// of many records into one shuffle block).
///
/// # Errors
///
/// Same as [`to_bytes`].
pub fn to_writer<T: Encode + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    value.encode(out);
    Ok(())
}

// ----- primitives ------------------------------------------------------

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

macro_rules! encode_unsigned {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                varint::write_u64(out, *self as u64);
            }
            fn encoded_len(&self) -> usize {
                varint::len_u64(*self as u64)
            }
        }
    )*};
}
encode_unsigned!(u8, u16, u32, u64, usize);

macro_rules! encode_signed {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                varint::write_i64(out, *self as i64);
            }
            fn encoded_len(&self) -> usize {
                varint::len_i64(*self as i64)
            }
        }
    )*};
}
encode_signed!(i8, i16, i32, i64, isize);

impl Encode for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Encode for char {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(*self as u64)
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.len()
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

// ----- compound types --------------------------------------------------

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: Encode + ?Sized> Encode for Box<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            None => 1,
            Some(v) => 1 + v.encoded_len(),
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64)
            + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.as_slice().encoded_len()
    }
}

impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64)
            + self
                .iter()
                .map(|(k, v)| k.encoded_len() + v.encoded_len())
                .sum::<usize>()
    }
}

impl<K: Encode, V: Encode, S> Encode for HashMap<K, V, S> {
    fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.len() as u64);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64)
            + self
                .iter()
                .map(|(k, v)| k.encoded_len() + v.encoded_len())
                .sum::<usize>()
    }
}

impl Encode for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn encoded_len(&self) -> usize {
        0
    }
}

macro_rules! encode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $( self.$idx.encode(out); )+
            }
            fn encoded_len(&self) -> usize {
                0 $( + self.$idx.encoded_len() )+
            }
        }
    };
}
encode_tuple!(A: 0);
encode_tuple!(A: 0, B: 1);
encode_tuple!(A: 0, B: 1, C: 2);
encode_tuple!(A: 0, B: 1, C: 2, D: 3);
encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
