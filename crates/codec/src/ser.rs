//! The serializer half of the format.

use serde::ser::{self, Serialize};

use crate::error::{Error, Result};
use crate::varint;

/// Serializes `value` into a fresh byte vector.
///
/// # Errors
///
/// Returns an error if the value's `Serialize` impl fails or it contains a
/// sequence of unknown length.
///
/// # Examples
///
/// ```
/// let bytes = splitserve_codec::to_bytes(&(1u32, "hi")).expect("encode");
/// let back: (u32, String) = splitserve_codec::from_bytes(&bytes).expect("decode");
/// assert_eq!(back, (1, "hi".to_string()));
/// ```
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    value.serialize(&mut Serializer { out: &mut out })?;
    Ok(out)
}

/// Serializes `value`, appending to an existing buffer (zero-copy batching
/// of many records into one shuffle block).
///
/// # Errors
///
/// Same as [`to_bytes`].
pub fn to_writer<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    value.serialize(&mut Serializer { out })
}

struct Serializer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a, 'b> ser::Serializer for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        varint::write_i64(self.out, v.into());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        varint::write_i64(self.out, v.into());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        varint::write_i64(self.out, v.into());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        varint::write_i64(self.out, v);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        varint::write_u64(self.out, v.into());
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        varint::write_u64(self.out, v.into());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        varint::write_u64(self.out, v.into());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        varint::write_u64(self.out, v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        varint::write_u64(self.out, v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        varint::write_u64(self.out, v.len() as u64);
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        varint::write_u64(self.out, v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        varint::write_u64(self.out, variant_index.into());
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        varint::write_u64(self.out, variant_index.into());
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or(Error::UnknownLength)?;
        varint::write_u64(self.out, len as u64);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        varint::write_u64(self.out, variant_index.into());
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len = len.ok_or(Error::UnknownLength)?;
        varint::write_u64(self.out, len as u64);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        varint::write_u64(self.out, variant_index.into());
        Ok(self)
    }
}

impl<'a, 'b> ser::SerializeSeq for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTuple for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTupleStruct for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTupleVariant for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeMap for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for &'b mut Serializer<'a> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}
