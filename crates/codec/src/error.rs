//! Error type shared by the serializer and deserializer.

use std::fmt;

/// Errors produced while encoding or decoding the SplitServe binary format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A custom message from serde (e.g. a `Serialize` impl failed).
    Message(String),
    /// Input ended before the value was fully decoded.
    UnexpectedEof,
    /// A varint ran past its maximum width (corrupt input).
    VarintOverflow,
    /// A length prefix was implausibly large for the remaining input.
    LengthOverflow(u64),
    /// Decoded bytes were not valid UTF-8 where a string was expected.
    InvalidUtf8,
    /// Decoded scalar was not a valid `char`.
    InvalidChar(u32),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// The format is not self-describing, so `deserialize_any` is unsupported.
    AnyUnsupported,
    /// Sequences serialized through this format must know their length.
    UnknownLength,
    /// Trailing bytes remained after the value was decoded.
    TrailingBytes(usize),
}

/// Convenience alias for codec results.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Message(m) => write!(f, "{m}"),
            Error::UnexpectedEof => write!(f, "unexpected end of input"),
            Error::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            Error::LengthOverflow(n) => write!(f, "length prefix {n} exceeds remaining input"),
            Error::InvalidUtf8 => write!(f, "invalid UTF-8 in decoded string"),
            Error::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            Error::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            Error::InvalidOptionTag(b) => write!(f, "invalid option tag {b}"),
            Error::AnyUnsupported => {
                write!(f, "format is not self-describing; deserialize_any unsupported")
            }
            Error::UnknownLength => write!(f, "sequence length must be known up front"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}
