//! Error type shared by the encoder and decoder.

use std::fmt;

/// Errors produced while encoding or decoding the SplitServe binary format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A free-form decoding failure (e.g. an integer out of range for the
    /// target type).
    Message(String),
    /// Input ended before the value was fully decoded.
    UnexpectedEof,
    /// A varint ran past its maximum width (corrupt input).
    VarintOverflow,
    /// A length prefix was implausibly large for the remaining input.
    LengthOverflow(u64),
    /// Decoded bytes were not valid UTF-8 where a string was expected.
    InvalidUtf8,
    /// Decoded scalar was not a valid `char`.
    InvalidChar(u32),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// An enum's variant index did not name a variant of the target type.
    InvalidVariant(u64),
    /// Trailing bytes remained after the value was decoded.
    TrailingBytes(usize),
}

/// Convenience alias for codec results.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Message(m) => write!(f, "{m}"),
            Error::UnexpectedEof => write!(f, "unexpected end of input"),
            Error::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            Error::LengthOverflow(n) => write!(f, "length prefix {n} exceeds remaining input"),
            Error::InvalidUtf8 => write!(f, "invalid UTF-8 in decoded string"),
            Error::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            Error::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            Error::InvalidOptionTag(b) => write!(f, "invalid option tag {b}"),
            Error::InvalidVariant(i) => write!(f, "invalid enum variant index {i}"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for Error {}
