//! Mergeable streaming quantile digest.
//!
//! The paper's latency claims are quantile claims (p95/p99 task latency,
//! SLO attainment), and fixed-bucket histograms can only answer them to
//! bucket resolution. [`QuantileDigest`] closes that gap with a
//! DDSketch-style log-bucketed sketch: values land in geometric buckets
//! `(γ^(i-1), γ^i]` with `γ = (1+α)/(1-α)`, so any reported quantile is
//! within **relative error α** of an exact order statistic (default
//! α = 1%).
//!
//! The log-bucket layout was chosen over t-digest/GK deliberately: those
//! sketches are insertion-order sensitive, so per-worker sketches merged
//! in different orders yield different summaries. Here a bucket is a pure
//! count, merging is count addition, and therefore **merge is exactly
//! commutative, associative and partition-independent** — per-worker
//! digests merged at snapshot time are byte-identical to a single-thread
//! digest over the same multiset ([`QuantileDigest::canonical_bytes`]),
//! which is what lets the engine's parallel data plane keep its
//! "identical at any worker count" contract.

use std::collections::BTreeMap;

/// Default relative-accuracy parameter: reported quantiles are within
/// 1% of an exact order statistic.
pub const DEFAULT_DIGEST_ALPHA: f64 = 0.01;

/// Magnitudes at or below this collapse into the exact zero bucket; the
/// sketch does not distinguish sub-nanosecond (virtual) latencies from
/// zero.
pub const MIN_TRACKABLE: f64 = 1e-9;

/// A mergeable, deterministic streaming quantile sketch.
///
/// Records finite `f64`s (non-finite values are counted and dropped) and
/// answers `quantile(q)` within relative error `alpha`. Two digests with
/// the same `alpha` merge by bucket-count addition, so the merged state
/// depends only on the multiset of recorded values — never on recording
/// or merge order.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileDigest {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    /// Counts for positive values, keyed by bucket index `i` such that
    /// `γ^(i-1) < v ≤ γ^i`.
    pos: BTreeMap<i32, u64>,
    /// Counts for negative values, keyed by the bucket index of `-v`.
    neg: BTreeMap<i32, u64>,
    /// Values with `|v| ≤ MIN_TRACKABLE`.
    zero: u64,
    /// Finite values recorded (including the zero bucket).
    count: u64,
    /// Non-finite values rejected.
    dropped: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileDigest {
    fn default() -> Self {
        QuantileDigest::new(DEFAULT_DIGEST_ALPHA)
    }
}

impl QuantileDigest {
    /// A digest with relative accuracy `alpha` (`0 < alpha < 1`).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileDigest {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero: 0,
            count: 0,
            dropped: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The digest's relative-accuracy parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Finite values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite values rejected so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` when nothing finite was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    fn bucket(&self, magnitude: f64) -> i32 {
        // γ^(i-1) < magnitude ≤ γ^i  ⇔  i = ⌈ln(m)/ln(γ)⌉. The range of
        // finite f64 magnitudes above MIN_TRACKABLE maps well inside i32.
        (magnitude.ln() / self.ln_gamma).ceil() as i32
    }

    /// The representative value of bucket `i`: the geometric midpoint
    /// `2γ^i/(γ+1)`, which is within relative `alpha` of every value in
    /// the bucket.
    fn bucket_value(&self, i: i32) -> f64 {
        2.0 * self.gamma.powi(i) / (self.gamma + 1.0)
    }

    /// Records one value. Non-finite values are counted in
    /// [`QuantileDigest::dropped`] and otherwise ignored.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v.abs() <= MIN_TRACKABLE {
            self.zero += 1;
        } else if v > 0.0 {
            *self.pos.entry(self.bucket(v)).or_insert(0) += 1;
        } else {
            *self.neg.entry(self.bucket(-v)).or_insert(0) += 1;
        }
    }

    /// Merges `other` into `self` by bucket-count addition. Exactly
    /// commutative and associative.
    ///
    /// # Panics
    ///
    /// Panics when the two digests were built with different `alpha`
    /// (their buckets are incompatible).
    pub fn merge(&mut self, other: &QuantileDigest) {
        assert_eq!(
            self.alpha.to_bits(),
            other.alpha.to_bits(),
            "cannot merge digests with different alpha"
        );
        for (i, c) in &other.pos {
            *self.pos.entry(*i).or_insert(0) += c;
        }
        for (i, c) in &other.neg {
            *self.neg.entry(*i).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.dropped += other.dropped;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`: an estimate within relative
    /// error `alpha` of the exact order statistic of rank
    /// `⌊q·(count−1)⌋` (zero-based) over everything recorded. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Zero-based rank of the order statistic we are after.
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        let mut cum = 0u64;
        // Negative values first, most negative (largest magnitude) first.
        for (i, c) in self.neg.iter().rev() {
            cum += c;
            if cum > rank {
                return Some(-self.bucket_value(*i));
            }
        }
        cum += self.zero;
        if cum > rank {
            return Some(0.0);
        }
        for (i, c) in &self.pos {
            cum += c;
            if cum > rank {
                return Some(self.bucket_value(*i));
            }
        }
        // Rounding left us past the last bucket; clamp to the maximum.
        Some(self.max)
    }

    /// A canonical, deterministic byte serialization of the digest state.
    /// Two digests over the same multiset of values — regardless of
    /// recording order, sharding, or merge order — serialize to identical
    /// bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 12 * (self.pos.len() + self.neg.len()));
        out.extend_from_slice(&self.alpha.to_bits().to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.zero.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&self.min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max.to_bits().to_le_bytes());
        for (sign, map) in [(b'-', &self.neg), (b'+', &self.pos)] {
            out.push(sign);
            out.extend_from_slice(&(map.len() as u64).to_le_bytes());
            for (i, c) in map {
                out.extend_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_digest_has_no_quantiles() {
        let d = QuantileDigest::default();
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.min(), None);
        assert_eq!(d.max(), None);
    }

    #[test]
    fn quantiles_are_within_alpha_of_exact() {
        let mut d = QuantileDigest::default();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.01).collect();
        for v in &values {
            d.record(*v);
        }
        for q in [0.0f64, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = values[(q * 999.0).floor() as usize];
            let est = d.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= d.alpha() * exact.abs() + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(d.min(), Some(0.01));
        assert_eq!(d.max(), Some(10.0));
    }

    #[test]
    fn merge_equals_single_stream() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = QuantileDigest::default();
        let mut a = QuantileDigest::default();
        let mut b = QuantileDigest::default();
        for (i, v) in values.iter().enumerate() {
            whole.record(*v);
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.canonical_bytes(), whole.canonical_bytes());
        assert_eq!(ba.canonical_bytes(), whole.canonical_bytes());
    }

    #[test]
    fn negative_and_zero_values_order_correctly() {
        let mut d = QuantileDigest::default();
        for v in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            d.record(v);
        }
        assert!(d.quantile(0.0).unwrap() < -9.0);
        assert_eq!(d.quantile(0.5).unwrap(), 0.0);
        assert!(d.quantile(1.0).unwrap() > 9.0);
    }

    #[test]
    fn non_finite_values_are_dropped_and_counted() {
        let mut d = QuantileDigest::default();
        d.record(f64::NAN);
        d.record(f64::INFINITY);
        d.record(1.0);
        assert_eq!(d.dropped(), 2);
        assert_eq!(d.count(), 1);
        assert_eq!(d.quantile(0.5), Some(d.quantile(0.5).unwrap()));
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merging_mismatched_alpha_panics() {
        let mut a = QuantileDigest::new(0.01);
        let b = QuantileDigest::new(0.02);
        a.merge(&b);
    }
}
