//! Windowed time-series rollups over virtual time.
//!
//! The paper's headline figures are trajectories — SLO attainment, bill
//! and latency *over the day* — so point-in-time counters are not enough.
//! [`Rollups`] keeps, per registered metric, a ring of tumbling windows
//! on the simulation clock: each window aggregates sum/count/min/max of
//! everything recorded inside it. Sliding views are derived at query time
//! by combining `k` adjacent tumbling windows, so the record path stays
//! O(1): one map lookup plus one slot update, no allocation after the
//! series exists.
//!
//! Like the rest of the observability layer, a disabled handle is one
//! branch per record call and holds no storage.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use splitserve_des::{SimDuration, SimTime};

use crate::chrome::escape_json;
use crate::registry::MetricKey;

/// Window shape for one rolled-up series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollupSpec {
    /// Width of one tumbling window in virtual time.
    pub width: SimDuration,
    /// Ring capacity in windows. Each window index owns slot
    /// `index % retention`, so a slot holds its most recent window —
    /// at least the last `retention` *active* windows are retained.
    pub retention: usize,
}

impl Default for RollupSpec {
    fn default() -> Self {
        RollupSpec {
            width: SimDuration::from_secs(1),
            retention: 512,
        }
    }
}

/// Sentinel for a never-touched ring slot.
const EMPTY: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Window {
    index: u64,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Window {
    fn fresh(index: u64) -> Self {
        Window {
            index,
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// A read-only copy of one window's aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// Window index: the window covers
    /// `[index * width, (index + 1) * width)` in virtual time.
    pub index: u64,
    /// Window start on the virtual clock, in microseconds.
    pub start_us: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Number of recorded values.
    pub count: u64,
    /// Minimum recorded value.
    pub min: f64,
    /// Maximum recorded value.
    pub max: f64,
}

#[derive(Debug)]
struct Series {
    width_us: u64,
    ring: Vec<Window>,
}

impl Series {
    fn new(spec: RollupSpec) -> Self {
        let width_us = spec.width.as_micros().max(1);
        let retention = spec.retention.max(1);
        Series {
            width_us,
            ring: vec![
                Window {
                    index: EMPTY,
                    sum: 0.0,
                    count: 0,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                };
                retention
            ],
        }
    }

    fn record(&mut self, at: SimTime, value: f64) {
        let index = at.as_micros() / self.width_us;
        let slot = (index % self.ring.len() as u64) as usize;
        let w = &mut self.ring[slot];
        if w.index != index {
            *w = Window::fresh(index);
        }
        w.sum += value;
        w.count += 1;
        w.min = w.min.min(value);
        w.max = w.max.max(value);
    }

    fn windows(&self) -> Vec<WindowSnapshot> {
        let mut out: Vec<WindowSnapshot> = self
            .ring
            .iter()
            .filter(|w| w.index != EMPTY)
            .map(|w| WindowSnapshot {
                index: w.index,
                start_us: w.index * self.width_us,
                sum: w.sum,
                count: w.count,
                min: w.min,
                max: w.max,
            })
            .collect();
        out.sort_by_key(|w| w.index);
        out
    }
}

#[derive(Debug, Default)]
struct RollupsInner {
    series: BTreeMap<MetricKey, Series>,
}

/// Tumbling/sliding windowed rollups over virtual time, keyed like
/// registry metrics by `(name, labels)`.
///
/// Cloneable handle; clones share storage. The [`Default`] is disabled.
#[derive(Debug, Clone, Default)]
pub struct Rollups {
    inner: Option<Arc<Mutex<RollupsInner>>>,
}

fn lock(inner: &Arc<Mutex<RollupsInner>>) -> MutexGuard<'_, RollupsInner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl Rollups {
    /// A recording handle.
    pub fn enabled() -> Self {
        Rollups {
            inner: Some(Arc::new(Mutex::new(RollupsInner::default()))),
        }
    }

    /// A handle that drops everything (also the [`Default`]).
    pub fn disabled() -> Self {
        Rollups::default()
    }

    /// Whether record calls have any effect.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers `name{labels}` with an explicit window shape. Without
    /// this, the first record call creates the series with
    /// [`RollupSpec::default`]. Registering an existing series is a
    /// no-op (window shape is fixed at birth).
    pub fn register(&self, name: &str, labels: &[(&str, &str)], spec: RollupSpec) {
        let Some(inner) = &self.inner else { return };
        lock(inner)
            .series
            .entry(key(name, labels))
            .or_insert_with(|| Series::new(spec));
    }

    /// Records `value` at virtual instant `at` into the tumbling window
    /// it falls in. O(1): one map lookup plus one slot update.
    pub fn record(&self, name: &str, labels: &[(&str, &str)], at: SimTime, value: f64) {
        let Some(inner) = &self.inner else { return };
        lock(inner)
            .series
            .entry(key(name, labels))
            .or_insert_with(|| Series::new(RollupSpec::default()))
            .record(at, value);
    }

    /// All retained tumbling windows of one series, ascending by window
    /// index; empty when the series does not exist.
    pub fn windows(&self, name: &str, labels: &[(&str, &str)]) -> Vec<WindowSnapshot> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        lock(inner)
            .series
            .get(&key(name, labels))
            .map(Series::windows)
            .unwrap_or_default()
    }

    /// Sliding view: for each retained window, the aggregate over the `k`
    /// tumbling windows ending at it (fewer at the series' leading edge —
    /// absent windows contribute nothing).
    pub fn sliding(&self, name: &str, labels: &[(&str, &str)], k: u64) -> Vec<WindowSnapshot> {
        let base = self.windows(name, labels);
        let k = k.max(1);
        base.iter()
            .map(|end| {
                let mut agg = WindowSnapshot {
                    index: end.index,
                    start_us: end.start_us,
                    sum: 0.0,
                    count: 0,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                };
                for w in &base {
                    if w.index <= end.index && end.index - w.index < k {
                        agg.sum += w.sum;
                        agg.count += w.count;
                        agg.min = agg.min.min(w.min);
                        agg.max = agg.max.max(w.max);
                    }
                }
                agg
            })
            .collect()
    }

    /// Renders every series as a deterministic, self-contained JSON
    /// document: series sorted by `(name, labels)`, windows ascending.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"series\":[");
        let Some(inner) = &self.inner else {
            out.push_str("]}");
            return out;
        };
        let inner = lock(inner);
        for (si, ((name, labels), series)) in inner.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", escape_json(name));
            for (li, (k, v)) in labels.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            let _ = write!(out, "}},\"width_us\":{},\"windows\":[", series.width_us);
            for (wi, w) in series.windows().iter().enumerate() {
                if wi > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"start_us\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    w.start_us, w.count, w.sum, w.min, w.max
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_rollups_are_inert() {
        let r = Rollups::disabled();
        r.record("x", &[], SimTime::ZERO, 1.0);
        assert!(r.windows("x", &[]).is_empty());
        assert_eq!(r.to_json(), "{\"series\":[]}");
    }

    #[test]
    fn values_land_in_their_tumbling_windows() {
        let r = Rollups::enabled();
        r.record("lat", &[], SimTime::from_millis(100), 1.0);
        r.record("lat", &[], SimTime::from_millis(900), 3.0);
        r.record("lat", &[], SimTime::from_millis(1500), 5.0);
        let w = r.windows("lat", &[]);
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].index, w[0].count, w[0].sum), (0, 2, 4.0));
        assert_eq!((w[0].min, w[0].max), (1.0, 3.0));
        assert_eq!((w[1].index, w[1].count, w[1].sum), (1, 1, 5.0));
        assert_eq!(w[1].start_us, 1_000_000);
    }

    #[test]
    fn ring_retention_reuses_slots() {
        let r = Rollups::enabled();
        let spec = RollupSpec {
            width: SimDuration::from_secs(1),
            retention: 4,
        };
        r.register("x", &[], spec);
        for s in 0..10u64 {
            r.record("x", &[], SimTime::from_secs(s), s as f64);
        }
        let w = r.windows("x", &[]);
        assert_eq!(w.len(), 4, "only the ring capacity is retained");
        assert_eq!(w.first().unwrap().index, 6);
        assert_eq!(w.last().unwrap().index, 9);
    }

    #[test]
    fn sliding_combines_adjacent_windows() {
        let r = Rollups::enabled();
        for s in 0..4u64 {
            r.record("x", &[], SimTime::from_secs(s), 1.0);
        }
        let sl = r.sliding("x", &[], 2);
        assert_eq!(sl.len(), 4);
        assert_eq!(sl[0].count, 1, "leading edge has one window");
        assert!(sl[1..].iter().all(|w| w.count == 2));
    }

    #[test]
    fn json_is_deterministic_and_labelled() {
        let r = Rollups::enabled();
        r.record("b", &[("k", "v")], SimTime::from_secs(1), 2.0);
        r.record("a", &[], SimTime::ZERO, 1.0);
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        assert!(json.find("\"a\"").unwrap() < json.find("\"b\"").unwrap());
        assert!(json.contains("\"k\":\"v\""));
        assert!(json.contains("\"width_us\":1000000"));
    }
}
