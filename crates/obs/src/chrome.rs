//! Chrome trace-event JSON export.
//!
//! The output loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): lanes become processes, tracks
//! become threads, spans become complete (`"ph":"X"`) events and markers
//! become instant (`"ph":"i"`) events. Timestamps are the simulation
//! clock's microseconds, so a trace of a scenario run reproduces the
//! paper's Figure-7 executor timeline visually.
//!
//! No JSON library is involved (hermetic build): the grammar emitted here
//! is the small, flat subset the trace viewer consumes.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::span::SpanRecorder;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the recorder's finished spans and instants as a Chrome
/// trace-event JSON document. Spans still open at export time are omitted
/// (export after the simulation has drained). Pid/tid assignment is
/// deterministic: lanes and tracks are numbered in sorted order.
pub(crate) fn to_chrome_trace(rec: &SpanRecorder) -> String {
    let Some(inner) = &rec.inner else {
        return "{\"traceEvents\":[]}".to_string();
    };
    let inner = crate::span::lock(inner);

    // Deterministic pid per lane and tid per (lane, track).
    let mut lanes: BTreeMap<&str, u64> = BTreeMap::new();
    let mut tracks: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for s in &inner.spans {
        lanes.entry(&s.lane).or_insert(0);
        tracks.entry((&s.lane, &s.track)).or_insert(0);
    }
    for i in &inner.instants {
        lanes.entry(&i.lane).or_insert(0);
        tracks.entry((&i.lane, &i.track)).or_insert(0);
    }
    for (n, (_, pid)) in lanes.iter_mut().enumerate() {
        *pid = n as u64 + 1;
    }
    for (n, (_, tid)) in tracks.iter_mut().enumerate() {
        *tid = n as u64 + 1;
    }

    let mut events: Vec<String> = Vec::new();
    for (lane, pid) in &lanes {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(lane)
        ));
    }
    for ((lane, track), tid) in &tracks {
        let pid = lanes[lane];
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(track)
        ));
    }
    for s in &inner.spans {
        let Some(end) = s.end else { continue };
        let pid = lanes[s.lane.as_str()];
        let tid = tracks[&(s.lane.as_str(), s.track.as_str())];
        let ts = s.start.as_micros();
        let dur = end.saturating_since(s.start).as_micros();
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
             \"name\":\"{}\",\"args\":{{{args}}}}}",
            escape_json(&s.name)
        ));
    }
    for i in &inner.instants {
        let pid = lanes[i.lane.as_str()];
        let tid = tracks[&(i.lane.as_str(), i.track.as_str())];
        events.push(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{}\"}}",
            i.at.as_micros(),
            escape_json(&i.name)
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (n, e) in events.iter().enumerate() {
        out.push_str(e);
        if n + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::SpanRecorder;
    use splitserve_des::SimTime;

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(super::escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_contains_metadata_spans_and_instants() {
        let r = SpanRecorder::enabled();
        let id = r.open(SimTime::from_secs(1), "vm", "e-vm-0000", "task 0.0");
        r.annotate(id, "cpu_secs", "0.5");
        r.close(id, SimTime::from_secs(3));
        r.instant(SimTime::from_secs(2), "driver", "driver", "segue commences");
        let open = r.open(SimTime::from_secs(4), "vm", "e-vm-0000", "never closed");
        let _ = open; // stays open: must be omitted
        let json = r.to_chrome_trace();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1000000"));
        assert!(json.contains("\"dur\":2000000"));
        assert!(json.contains("\"cpu_secs\":\"0.5\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(!json.contains("never closed"));
    }

    #[test]
    fn disabled_recorder_exports_empty_document() {
        let r = SpanRecorder::disabled();
        assert_eq!(r.to_chrome_trace(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn pid_tid_assignment_is_deterministic() {
        let build = || {
            let r = SpanRecorder::enabled();
            for (lane, track) in [("vm", "b"), ("lambda", "a"), ("vm", "a")] {
                let id = r.open(SimTime::ZERO, lane, track, "t");
                r.close(id, SimTime::from_secs(1));
            }
            r.to_chrome_trace()
        };
        assert_eq!(build(), build());
    }
}
