//! Structured spans on the simulation clock.
//!
//! A span is an interval of virtual time on a *track* (one executor, the
//! driver, one store backend) inside a *lane* (a group of tracks: `"vm"`,
//! `"lambda"`, `"driver"`, `"storage"`). Lanes become processes and tracks
//! become threads in the Chrome trace export, which is what makes the
//! Figure-7 executor-timeline layout fall out of `chrome://tracing`
//! directly.

use std::sync::{Arc, Mutex, MutexGuard};

use splitserve_des::SimTime;

/// Identifies an open span. Obtained from [`SpanRecorder::open`]; a
/// disabled recorder hands out [`SpanId::NONE`], which closes harmlessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The id a disabled recorder returns; closing/annotating it is a no-op.
    pub const NONE: SpanId = SpanId(u64::MAX);
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Lane (Chrome-trace process), e.g. `"vm"`, `"lambda"`, `"storage"`.
    pub lane: String,
    /// Track within the lane (Chrome-trace thread), e.g. an executor id.
    pub track: String,
    /// Human-readable name, e.g. `"task 2.5"` or `"segue drain"`.
    pub name: String,
    /// Open instant.
    pub start: SimTime,
    /// Close instant; `None` while still open.
    pub end: Option<SimTime>,
    /// Free-form annotations (Chrome-trace `args`).
    pub args: Vec<(String, String)>,
}

/// An instant event — zero-duration marker on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct Instant {
    pub(crate) lane: String,
    pub(crate) track: String,
    pub(crate) name: String,
    pub(crate) at: SimTime,
}

#[derive(Debug, Default)]
pub(crate) struct SpanInner {
    pub spans: Vec<Span>,
    pub instants: Vec<Instant>,
}

/// Records nested spans and instant markers. Disabled by [`Default`];
/// clones of an enabled recorder share storage.
///
/// Storage is behind a `Mutex` so clones may record from worker threads
/// (task bodies running on the engine's worker pool) as well as the
/// simulation thread.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    pub(crate) inner: Option<Arc<Mutex<SpanInner>>>,
}

/// Locks a recorder's storage, recovering from poison: a panicking task
/// body must not wedge the telemetry of the run that reports it.
pub(crate) fn lock(inner: &Arc<Mutex<SpanInner>>) -> MutexGuard<'_, SpanInner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl SpanRecorder {
    /// A recorder that records.
    pub fn enabled() -> Self {
        SpanRecorder {
            inner: Some(Arc::new(Mutex::new(SpanInner::default()))),
        }
    }

    /// A recorder that drops everything (the [`Default`]).
    pub fn disabled() -> Self {
        SpanRecorder::default()
    }

    /// Whether record calls have any effect.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span at `at` on `lane`/`track`. Returns [`SpanId::NONE`]
    /// when disabled.
    pub fn open(&self, at: SimTime, lane: &str, track: &str, name: &str) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut inner = lock(inner);
        let id = SpanId(inner.spans.len() as u64);
        inner.spans.push(Span {
            lane: lane.to_string(),
            track: track.to_string(),
            name: name.to_string(),
            start: at,
            end: None,
            args: Vec::new(),
        });
        id
    }

    /// Closes `id` at `at`. Closing [`SpanId::NONE`] or an already-closed
    /// span is a no-op; a close before the open instant is clamped to it
    /// (zero-length span) so the trace stays well-formed.
    pub fn close(&self, id: SpanId, at: SimTime) {
        let Some(inner) = &self.inner else { return };
        if id == SpanId::NONE {
            return;
        }
        let mut inner = lock(inner);
        if let Some(span) = inner.spans.get_mut(id.0 as usize) {
            if span.end.is_none() {
                span.end = Some(at.max(span.start));
            }
        }
    }

    /// Attaches a `key = value` annotation to an open or closed span.
    pub fn annotate(&self, id: SpanId, key: &str, value: &str) {
        let Some(inner) = &self.inner else { return };
        if id == SpanId::NONE {
            return;
        }
        let mut inner = lock(inner);
        if let Some(span) = inner.spans.get_mut(id.0 as usize) {
            span.args.push((key.to_string(), value.to_string()));
        }
    }

    /// Records a zero-duration marker.
    pub fn instant(&self, at: SimTime, lane: &str, track: &str, name: &str) {
        let Some(inner) = &self.inner else { return };
        lock(inner).instants.push(Instant {
            lane: lane.to_string(),
            track: track.to_string(),
            name: name.to_string(),
            at,
        });
    }

    /// All spans recorded so far (open ones have `end == None`).
    pub fn snapshot(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => lock(inner).spans.clone(),
            None => Vec::new(),
        }
    }

    /// Only the spans that have been closed.
    pub fn finished_spans(&self) -> Vec<Span> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.end.is_some())
            .collect()
    }

    /// Number of spans still open.
    pub fn open_spans(&self) -> usize {
        match &self.inner {
            Some(inner) => lock(inner).spans.iter().filter(|s| s.end.is_none()).count(),
            None => 0,
        }
    }

    /// Checks the structural invariant that spans on each `(lane, track)`
    /// pair nest properly: for any two spans on one track, they are either
    /// disjoint or one contains the other. Returns an offending pair of
    /// names, or `None` when the invariant holds.
    ///
    /// Runs in `O(n log n)`: spans are grouped by `(lane, track)` and
    /// sorted by start instant (longest first on ties), then a single
    /// stack sweep per track checks each span against the innermost
    /// still-open enclosing span — the only candidate it can cross once
    /// the sort guarantees every earlier-starting overlapper is on the
    /// stack. The old all-pairs scan made trace validation quadratic in
    /// span count, which dominated verify time on wide chaos runs.
    pub fn nesting_violation(&self) -> Option<(String, String)> {
        let mut spans = self.finished_spans();
        spans.sort_by(|a, b| {
            (&a.lane, &a.track, a.start)
                .cmp(&(&b.lane, &b.track, b.start))
                // Ties on start: longer span first, so a container
                // precedes its contents.
                .then(b.end.cmp(&a.end))
        });
        // Innermost-first stack of (end, index) for the current track.
        let mut stack: Vec<usize> = Vec::new();
        let mut track_of: Option<(&str, &str)> = None;
        for (i, s) in spans.iter().enumerate() {
            let here = (s.lane.as_str(), s.track.as_str());
            if track_of != Some(here) {
                track_of = Some(here);
                stack.clear();
            }
            let end = s.end.expect("finished");
            while let Some(&top) = stack.last() {
                if spans[top].end.expect("finished") <= s.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                // `top` starts no later and is still open at our start;
                // proper nesting requires it to contain us entirely.
                if end > spans[top].end.expect("finished") {
                    return Some((spans[top].name.clone(), s.name.clone()));
                }
            }
            stack.push(i);
        }
        None
    }

    /// Renders the Chrome trace-event JSON (see the `chrome` module).
    pub fn to_chrome_trace(&self) -> String {
        crate::chrome::to_chrome_trace(self)
    }

    /// Writes [`SpanRecorder::to_chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = SpanRecorder::disabled();
        let id = r.open(t(0), "vm", "e0", "task");
        assert_eq!(id, SpanId::NONE);
        r.close(id, t(1));
        r.instant(t(0), "vm", "e0", "mark");
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn open_close_annotate() {
        let r = SpanRecorder::enabled();
        let id = r.open(t(1), "lambda", "lambda-0", "task 0.3");
        r.annotate(id, "cpu_secs", "1.25");
        assert_eq!(r.open_spans(), 1);
        r.close(id, t(4));
        assert_eq!(r.open_spans(), 0);
        let spans = r.finished_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].end, Some(t(4)));
        assert_eq!(spans[0].args, vec![("cpu_secs".into(), "1.25".into())]);
    }

    #[test]
    fn double_close_keeps_first_end() {
        let r = SpanRecorder::enabled();
        let id = r.open(t(0), "vm", "e0", "task");
        r.close(id, t(2));
        r.close(id, t(9));
        assert_eq!(r.finished_spans()[0].end, Some(t(2)));
    }

    #[test]
    fn close_before_open_clamps() {
        let r = SpanRecorder::enabled();
        let id = r.open(t(5), "vm", "e0", "task");
        r.close(id, t(1));
        assert_eq!(r.finished_spans()[0].end, Some(t(5)));
    }

    #[test]
    fn nesting_violation_detection() {
        let r = SpanRecorder::enabled();
        let a = r.open(t(0), "vm", "e0", "outer");
        let b = r.open(t(1), "vm", "e0", "inner");
        r.close(b, t(2));
        r.close(a, t(3));
        // Disjoint span on another track never conflicts.
        let c = r.open(t(1), "vm", "e1", "other");
        r.close(c, t(5));
        assert_eq!(r.nesting_violation(), None);

        // A genuinely interleaved pair on one track is flagged.
        let x = r.open(t(10), "vm", "e0", "x");
        let y = r.open(t(11), "vm", "e0", "y");
        r.close(x, t(12));
        r.close(y, t(13));
        assert_eq!(r.nesting_violation(), Some(("x".into(), "y".into())));
    }
}
