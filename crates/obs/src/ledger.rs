//! SLO and billing ledgers — the tenant-facing trajectory view.
//!
//! The paper's Figure 3 judgement ("which provisioning policy should I
//! buy?") is made from two curves per tenant: SLO attainment over time
//! and cumulative bill over time. [`SloLedger`] and [`BillLedger`]
//! produce exactly those from a stream of job completions and charges,
//! keyed by an opaque [`TenantId`] so the single-tenant reproduction and
//! ROADMAP's multi-tenant job server share one accounting path.
//!
//! Ledgers are explicit objects (not hidden behind the [`Obs`](crate::Obs)
//! enable flag): whoever runs a job stream constructs them, feeds them
//! from job-completion callbacks, and reads the curves at the end.
//! Cloneable handles; clones share storage.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use splitserve_des::SimTime;

use crate::digest::QuantileDigest;

/// Opaque tenant key. The default tenant is `"default"` — a single-tenant
/// deployment never needs to mention tenants at all.
///
/// Backed by `Arc<str>`: tenant ids flow through every admission event
/// and ledger entry, so cloning one is a refcount bump, not a string
/// allocation. Ordering, equality and hashing all follow the string
/// contents.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// A tenant key from any string-like id.
    pub fn new(id: impl Into<String>) -> Self {
        TenantId(id.into().into())
    }

    /// The raw key.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId(Arc::from("default"))
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One point on a tenant's SLO-attainment curve: the state just after a
/// job completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPoint {
    /// Completion instant on the virtual clock.
    pub at: SimTime,
    /// The completing job's latency in seconds.
    pub latency_secs: f64,
    /// The completing job's SLO in seconds.
    pub slo_secs: f64,
    /// Whether that job met its SLO.
    pub met: bool,
    /// Cumulative attainment (met / completed) after this job.
    pub attainment: f64,
}

#[derive(Debug, Default)]
struct TenantSlo {
    met: u64,
    points: Vec<SloPoint>,
    latency: Option<QuantileDigest>,
}

/// Per-tenant SLO accounting: feed it job completions, read the
/// attainment curve and latency quantiles.
#[derive(Debug, Clone, Default)]
pub struct SloLedger {
    inner: Arc<Mutex<BTreeMap<TenantId, TenantSlo>>>,
}

fn lock<T>(inner: &Arc<Mutex<T>>) -> MutexGuard<'_, T> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl SloLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        SloLedger::default()
    }

    /// Records one job completion for `tenant`, returning whether the job
    /// met its SLO (`latency_secs <= slo_secs`).
    pub fn record_job(
        &self,
        tenant: &TenantId,
        at: SimTime,
        latency_secs: f64,
        slo_secs: f64,
    ) -> bool {
        let met = latency_secs <= slo_secs;
        let mut inner = lock(&self.inner);
        let t = inner.entry(tenant.clone()).or_default();
        if met {
            t.met += 1;
        }
        let total = t.points.len() as u64 + 1;
        t.points.push(SloPoint {
            at,
            latency_secs,
            slo_secs,
            met,
            attainment: t.met as f64 / total as f64,
        });
        t.latency
            .get_or_insert_with(QuantileDigest::default)
            .record(latency_secs);
        met
    }

    /// Jobs recorded for `tenant`.
    pub fn jobs(&self, tenant: &TenantId) -> u64 {
        lock(&self.inner)
            .get(tenant)
            .map_or(0, |t| t.points.len() as u64)
    }

    /// Current attainment for `tenant`: fraction of recorded jobs that
    /// met their SLO (vacuously 1.0 with no jobs).
    pub fn attainment(&self, tenant: &TenantId) -> f64 {
        lock(&self.inner).get(tenant).map_or(1.0, |t| {
            if t.points.is_empty() {
                1.0
            } else {
                t.met as f64 / t.points.len() as f64
            }
        })
    }

    /// The attainment curve: one point per completed job, completion
    /// order.
    pub fn curve(&self, tenant: &TenantId) -> Vec<SloPoint> {
        lock(&self.inner)
            .get(tenant)
            .map(|t| t.points.clone())
            .unwrap_or_default()
    }

    /// A latency quantile for `tenant` from the ledger's streaming digest
    /// (within the digest's documented relative error).
    pub fn latency_quantile(&self, tenant: &TenantId, q: f64) -> Option<f64> {
        lock(&self.inner)
            .get(tenant)?
            .latency
            .as_ref()?
            .quantile(q)
    }

    /// A copy of the tenant's latency digest, if any job was recorded.
    pub fn latency_digest(&self, tenant: &TenantId) -> Option<QuantileDigest> {
        lock(&self.inner).get(tenant)?.latency.clone()
    }

    /// All tenants that recorded at least one job, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        lock(&self.inner).keys().cloned().collect()
    }

    /// Jobs recorded across **all** tenants.
    pub fn fleet_jobs(&self) -> u64 {
        lock(&self.inner)
            .values()
            .map(|t| t.points.len() as u64)
            .sum()
    }

    /// Fleet-wide attainment: met / recorded across all tenants
    /// (vacuously 1.0 with no jobs). Multi-tenant outcomes must use
    /// this — per-tenant [`SloLedger::attainment`] reports one tenant.
    pub fn fleet_attainment(&self) -> f64 {
        let inner = lock(&self.inner);
        let total: u64 = inner.values().map(|t| t.points.len() as u64).sum();
        if total == 0 {
            return 1.0;
        }
        let met: u64 = inner.values().map(|t| t.met).sum();
        met as f64 / total as f64
    }

    /// Every tenant's latency digest merged into one fleet digest (the
    /// merge is exactly commutative and associative, so the result does
    /// not depend on tenant order). `None` if no job was recorded.
    pub fn fleet_latency_digest(&self) -> Option<QuantileDigest> {
        let inner = lock(&self.inner);
        let mut acc: Option<QuantileDigest> = None;
        for t in inner.values() {
            if let Some(d) = &t.latency {
                match &mut acc {
                    Some(a) => a.merge(d),
                    None => acc = Some(d.clone()),
                }
            }
        }
        acc
    }
}

/// One point on a tenant's cumulative-bill curve.
#[derive(Debug, Clone, PartialEq)]
pub struct BillPoint {
    /// Charge instant on the virtual clock.
    pub at: SimTime,
    /// This charge's amount in USD.
    pub amount_usd: f64,
    /// Cumulative spend after this charge.
    pub cumulative_usd: f64,
    /// Free-form charge category (e.g. `"vm"`, `"lambda"`, `"accrued"`).
    pub kind: String,
}

/// Per-tenant billing accounting: feed it charges, read the cumulative
/// bill curve.
#[derive(Debug, Clone, Default)]
pub struct BillLedger {
    inner: Arc<Mutex<BTreeMap<TenantId, Vec<BillPoint>>>>,
}

impl BillLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        BillLedger::default()
    }

    /// Records a charge of `usd` for `tenant` at `at`.
    pub fn charge(&self, tenant: &TenantId, at: SimTime, usd: f64, kind: &str) {
        let mut inner = lock(&self.inner);
        let points = inner.entry(tenant.clone()).or_default();
        let cumulative = points.last().map_or(0.0, |p| p.cumulative_usd) + usd;
        points.push(BillPoint {
            at,
            amount_usd: usd,
            cumulative_usd: cumulative,
            kind: kind.to_string(),
        });
    }

    /// Total spend recorded for `tenant`.
    pub fn total(&self, tenant: &TenantId) -> f64 {
        lock(&self.inner)
            .get(tenant)
            .and_then(|p| p.last())
            .map_or(0.0, |p| p.cumulative_usd)
    }

    /// The cumulative-bill curve: one point per charge, charge order.
    pub fn curve(&self, tenant: &TenantId) -> Vec<BillPoint> {
        lock(&self.inner)
            .get(tenant)
            .cloned()
            .unwrap_or_default()
    }

    /// All tenants that recorded at least one charge, sorted.
    pub fn tenants(&self) -> Vec<TenantId> {
        lock(&self.inner).keys().cloned().collect()
    }

    /// Total spend across **all** tenants.
    pub fn fleet_total(&self) -> f64 {
        let inner = lock(&self.inner);
        inner
            .values()
            .filter_map(|p| p.last())
            .map(|p| p.cumulative_usd)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tenant_is_default() {
        assert_eq!(TenantId::default().as_str(), "default");
        assert_eq!(TenantId::default().to_string(), "default");
    }

    #[test]
    fn attainment_curve_tracks_met_fraction() {
        let l = SloLedger::new();
        let t = TenantId::default();
        assert_eq!(l.attainment(&t), 1.0, "vacuous attainment");
        assert!(l.record_job(&t, SimTime::from_secs(1), 2.0, 5.0));
        assert!(!l.record_job(&t, SimTime::from_secs(2), 9.0, 5.0));
        assert!(l.record_job(&t, SimTime::from_secs(3), 4.0, 5.0));
        assert_eq!(l.jobs(&t), 3);
        let curve = l.curve(&t);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].attainment, 1.0);
        assert_eq!(curve[1].attainment, 0.5);
        assert!((curve[2].attainment - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(l.attainment(&t), curve[2].attainment);
        let p50 = l.latency_quantile(&t, 0.5).unwrap();
        assert!((p50 - 4.0).abs() <= 0.05, "p50 latency ~4s, got {p50}");
    }

    #[test]
    fn tenants_are_isolated() {
        let l = SloLedger::new();
        let a = TenantId::new("a");
        let b = TenantId::new("b");
        l.record_job(&a, SimTime::ZERO, 1.0, 2.0);
        l.record_job(&b, SimTime::ZERO, 9.0, 2.0);
        assert_eq!(l.attainment(&a), 1.0);
        assert_eq!(l.attainment(&b), 0.0);
        assert_eq!(l.tenants(), vec![a, b]);
    }

    #[test]
    fn bill_curve_is_cumulative() {
        let l = BillLedger::new();
        let t = TenantId::default();
        l.charge(&t, SimTime::from_secs(1), 0.5, "vm");
        l.charge(&t, SimTime::from_secs(2), 0.25, "lambda");
        let curve = l.curve(&t);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].cumulative_usd, 0.5);
        assert_eq!(curve[1].cumulative_usd, 0.75);
        assert_eq!(l.total(&t), 0.75);
        assert_eq!(curve[1].kind, "lambda");
    }

    #[test]
    fn fleet_accessors_aggregate_all_tenants() {
        let l = SloLedger::new();
        assert_eq!(l.fleet_attainment(), 1.0, "vacuous fleet attainment");
        assert!(l.fleet_latency_digest().is_none());
        let a = TenantId::new("a");
        let b = TenantId::new("b");
        l.record_job(&a, SimTime::from_secs(1), 1.0, 2.0);
        l.record_job(&a, SimTime::from_secs(2), 3.0, 2.0);
        l.record_job(&b, SimTime::from_secs(3), 9.0, 2.0);
        assert_eq!(l.fleet_jobs(), 3);
        assert!((l.fleet_attainment() - 1.0 / 3.0).abs() < 1e-12);
        let d = l.fleet_latency_digest().unwrap();
        assert_eq!(d.count(), 3);
        // The merged digest must equal merging the per-tenant digests by
        // hand, byte for byte.
        let mut by_hand = l.latency_digest(&a).unwrap();
        by_hand.merge(&l.latency_digest(&b).unwrap());
        assert_eq!(d.canonical_bytes(), by_hand.canonical_bytes());

        let bill = BillLedger::new();
        assert_eq!(bill.fleet_total(), 0.0);
        bill.charge(&a, SimTime::from_secs(1), 0.5, "vm");
        bill.charge(&b, SimTime::from_secs(2), 0.25, "lambda");
        bill.charge(&a, SimTime::from_secs(3), 0.5, "vm");
        assert!((bill.fleet_total() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state() {
        let l = SloLedger::new();
        let c = l.clone();
        c.record_job(&TenantId::default(), SimTime::ZERO, 1.0, 2.0);
        assert_eq!(l.jobs(&TenantId::default()), 1);
    }
}
