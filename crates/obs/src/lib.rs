//! # splitserve-obs — the unified observability layer
//!
//! The paper's whole evaluation (the Figure 7 execution timelines, the
//! per-executor work distributions, the shuffle-store comparisons of §6)
//! is built from fine-grained runtime telemetry. This crate is the
//! substrate that produces it:
//!
//! - [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms, labelled by executor kind, stage, store backend, …
//! - [`SpanRecorder`] — structured, nested spans stamped with the
//!   deterministic simulation clock ([`SimTime`]): task runs, shuffle
//!   writes/fetches, Lambda cold/warm starts, segue drains, rollbacks.
//! - Exporters — Chrome trace-event JSON ([`SpanRecorder::to_chrome_trace`],
//!   loadable in `chrome://tracing` / Perfetto to reproduce Figure-7-style
//!   timelines) and Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]).
//!
//! Everything hangs off an [`Obs`] handle. The handle is **off by
//! default**: a disabled handle holds no allocation and every record call
//! is a single branch on an `Option`, so instrumented hot paths cost
//! nothing measurable when observability is not requested (see the
//! `obs_overhead` benchmark in `splitserve-bench`).
//!
//! ```
//! use splitserve_des::SimTime;
//! use splitserve_obs::Obs;
//!
//! let obs = Obs::enabled();
//! obs.metrics.counter_add("tasks_completed_total", &[("kind", "vm")], 1);
//! let span = obs.spans.open(SimTime::ZERO, "vm", "exec-0", "task 0.0");
//! obs.spans.close(span, SimTime::from_secs(2));
//! assert!(obs.spans.to_chrome_trace().contains("traceEvents"));
//!
//! // Disabled: same calls, no effect, no allocation.
//! let off = Obs::disabled();
//! off.metrics.counter_add("tasks_completed_total", &[("kind", "vm")], 1);
//! assert_eq!(off.metrics.counter_value("tasks_completed_total", &[("kind", "vm")]), 0);
//! ```

#![warn(missing_docs)]

mod chrome;
mod digest;
mod flight;
mod ledger;
mod prometheus;
mod registry;
mod span;
mod timeseries;

pub use digest::{QuantileDigest, DEFAULT_DIGEST_ALPHA, MIN_TRACKABLE};
pub use flight::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use ledger::{BillLedger, BillPoint, SloLedger, SloPoint, TenantId};
pub use registry::{
    CounterHandle, HistogramHandle, HistogramSnapshot, MetricsRegistry, QuantileHandle,
    DEFAULT_LATENCY_BUCKETS,
};
pub use span::{Span, SpanId, SpanRecorder};
pub use timeseries::{RollupSpec, Rollups, WindowSnapshot};

use splitserve_des::SimTime;

/// The bundle instrumented layers carry: a metrics registry plus a span
/// recorder, both sharing one enabled/disabled state.
///
/// Cloneable handle; clones share the underlying storage.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Counters, gauges, histograms and streaming quantile digests.
    pub metrics: MetricsRegistry,
    /// Structured spans for timeline export.
    pub spans: SpanRecorder,
    /// Windowed time-series rollups over virtual time.
    pub rollups: Rollups,
    /// Bounded ring of recent structured events, dumpable as a
    /// replayable JSON snapshot on failure.
    pub flight: FlightRecorder,
}

impl Obs {
    /// A disabled handle: every record call is a no-op branch. This is
    /// also what [`Obs::default`] returns — observability is opt-in.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// An enabled handle recording into fresh storage.
    pub fn enabled() -> Self {
        Obs {
            metrics: MetricsRegistry::enabled(),
            spans: SpanRecorder::enabled(),
            rollups: Rollups::enabled(),
            flight: FlightRecorder::enabled(),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
            || self.spans.is_enabled()
            || self.rollups.is_enabled()
            || self.flight.is_enabled()
    }

    /// Convenience: an instant marker on the spans plus a counter bump —
    /// the shape of "something notable happened once" telemetry.
    pub fn mark(&self, at: SimTime, lane: &str, track: &str, name: &str) {
        self.spans.instant(at, lane, track, name);
        self.metrics.counter_add("obs_marks_total", &[("name", name)], 1);
    }

    /// Records one injected fault of `kind` as
    /// `faults_injected_total{kind}` — the counter the chaos plane bumps
    /// for every kill, drain, straggle, latency window and storage fault
    /// it performs, so a metrics dump distinguishes injected trouble from
    /// organic trouble.
    pub fn count_fault(&self, kind: &str) {
        self.metrics
            .counter_add("faults_injected_total", &[("kind", kind)], 1);
    }

    /// [`Obs::count_fault`] plus a flight-recorder event, for injectors
    /// that know *when* the fault fired — so a post-mortem dump shows
    /// injected trouble inline with the task transitions it caused.
    pub fn fault_event(&self, at: SimTime, kind: &str) {
        self.count_fault(kind);
        self.flight.record(at, "fault-injected", &[("kind", kind)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        obs.mark(SimTime::ZERO, "driver", "driver", "noop");
        assert!(obs.spans.finished_spans().is_empty());
    }

    #[test]
    fn enabled_records_marks() {
        let obs = Obs::enabled();
        obs.mark(SimTime::from_secs(1), "driver", "driver", "segue");
        assert_eq!(
            obs.metrics.counter_value("obs_marks_total", &[("name", "segue")]),
            1
        );
        let trace = obs.spans.to_chrome_trace();
        assert!(trace.contains("\"segue\""));
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.metrics.counter_add("x_total", &[], 3);
        assert_eq!(obs.metrics.counter_value("x_total", &[]), 3);
    }
}
