//! The flight recorder: a bounded ring of recent structured events.
//!
//! When a chaos case violates the differential oracle, the repro line
//! (`CHAOS_SEED=… CHAOS_PLAN=…`) says *how to rerun* the failure but not
//! *what happened* on the way there. The flight recorder fills that gap:
//! engine layers push cheap structured events (task transitions,
//! rollbacks, injected faults) into a fixed-capacity ring, and on failure
//! the ring is dumped as a self-contained JSON snapshot with the repro
//! line embedded — replaying the line reproduces the same event stream,
//! so the dump is both evidence and test vector.
//!
//! Off by default like every obs component: a disabled recorder is one
//! branch per record call. The ring overwrites its oldest events when
//! full (and counts how many), so long runs keep the *recent* history a
//! post-mortem actually needs.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use splitserve_des::SimTime;

use crate::chrome::escape_json;

/// Default ring capacity in events.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// When it happened on the virtual clock.
    pub at: SimTime,
    /// Event kind, e.g. `"task-failed"`, `"stage-rollback"`,
    /// `"fault-injected"`.
    pub kind: String,
    /// Structured detail, insertion order preserved.
    pub fields: Vec<(String, String)>,
}

#[derive(Debug)]
struct Ring {
    capacity: usize,
    events: VecDeque<FlightEvent>,
    overwritten: u64,
}

/// Bounded ring of recent structured events with a JSON dump.
///
/// Cloneable handle; clones share the ring. The [`Default`] is disabled.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<Ring>>>,
}

fn lock(inner: &Arc<Mutex<Ring>>) -> MutexGuard<'_, Ring> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl FlightRecorder {
    /// A recording ring with [`DEFAULT_FLIGHT_CAPACITY`].
    pub fn enabled() -> Self {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recording ring holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(Ring {
                capacity,
                events: VecDeque::with_capacity(capacity),
                overwritten: 0,
            }))),
        }
    }

    /// A recorder that drops everything (also the [`Default`]).
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// Whether record calls have any effect.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event, evicting the oldest when the ring is full.
    pub fn record(&self, at: SimTime, kind: &str, fields: &[(&str, &str)]) {
        let Some(inner) = &self.inner else { return };
        let mut ring = lock(inner);
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.overwritten += 1;
        }
        let event = FlightEvent {
            at,
            kind: kind.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        ring.events.push_back(event);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(i).events.len())
    }

    /// `true` when no events are held (or the recorder is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| lock(i).overwritten)
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.inner
            .as_ref()
            .map(|i| lock(i).events.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Dumps the ring as a replayable JSON snapshot. `reason` says why
    /// the dump was taken; `repro` carries the deterministic replay line
    /// (e.g. a chaos `CHAOS_SEED=… CHAOS_PLAN=…` line) when one exists.
    /// Deterministic: same ring, same string.
    pub fn dump_json(&self, reason: &str, repro: Option<&str>) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{{\"reason\":\"{}\",", escape_json(reason));
        match repro {
            Some(r) => {
                let _ = write!(out, "\"repro\":\"{}\",", escape_json(r));
            }
            None => out.push_str("\"repro\":null,"),
        }
        let _ = write!(out, "\"overwritten\":{},\"events\":[", self.overwritten());
        for (i, e) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_us\":{},\"kind\":\"{}\",\"fields\":{{",
                e.at.as_micros(),
                escape_json(&e.kind)
            );
            for (fi, (k, v)) in e.fields.iter().enumerate() {
                if fi > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let f = FlightRecorder::disabled();
        f.record(SimTime::ZERO, "x", &[]);
        assert!(f.is_empty());
        assert_eq!(f.dump_json("why", None), "{\"reason\":\"why\",\"repro\":null,\"overwritten\":0,\"events\":[]}");
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let f = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            f.record(SimTime::from_secs(i), "e", &[("i", &i.to_string())]);
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.overwritten(), 2);
        let snap = f.snapshot();
        assert_eq!(snap[0].fields[0].1, "2", "oldest retained is the third");
        assert_eq!(snap[2].fields[0].1, "4");
    }

    #[test]
    fn dump_embeds_repro_and_escapes() {
        let f = FlightRecorder::with_capacity(8);
        f.record(SimTime::from_micros(42), "fault-injected", &[("kind", "ki\"ll")]);
        let dump = f.dump_json("oracle-violation", Some("CHAOS_SEED=7 CHAOS_PLAN={\"seed\":7}"));
        assert!(dump.contains("\"reason\":\"oracle-violation\""));
        assert!(dump.contains("\"repro\":\"CHAOS_SEED=7 CHAOS_PLAN={\\\"seed\\\":7}\""));
        assert!(dump.contains("\"t_us\":42"));
        assert!(dump.contains("\"kind\":\"ki\\\"ll\""));
        assert_eq!(dump, f.dump_json("oracle-violation", Some("CHAOS_SEED=7 CHAOS_PLAN={\"seed\":7}")));
    }

    #[test]
    fn clones_share_the_ring() {
        let f = FlightRecorder::enabled();
        f.clone().record(SimTime::ZERO, "x", &[]);
        assert_eq!(f.len(), 1);
    }
}
