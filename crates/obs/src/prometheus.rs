//! Prometheus text exposition (version 0.0.4) of a [`MetricsRegistry`].
//!
//! The output is what a `/metrics` endpoint would serve; here it is
//! written to a file so experiment runs leave a scrapeable artifact next
//! to their tables. Counters end in `_total` by convention, histograms
//! expand to `_bucket{le=...}` / `_sum` / `_count` series.

use std::fmt::Write;

use crate::registry::MetricsRegistry;

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline are escaped.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a label set (possibly with an extra `le` pair) as `{k="v",...}`
/// or the empty string.
fn labels_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Formats a float the way Prometheus expects (`+Inf`, integers without
/// exponent noise).
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the whole registry. One `# TYPE` header per metric name, series
/// in deterministic (BTreeMap) order. A disabled registry renders empty.
pub(crate) fn render(reg: &MetricsRegistry) -> String {
    let Some(inner) = &reg.inner else {
        return String::new();
    };
    let inner = crate::registry::lock(inner);
    let mut out = String::new();

    let mut last_name = "";
    for ((name, labels), value) in &inner.counters {
        if name != last_name {
            let _ = writeln!(out, "# TYPE {name} counter");
            last_name = name;
        }
        let _ = writeln!(out, "{name}{} {value}", labels_block(labels, None));
    }

    last_name = "";
    for ((name, labels), value) in &inner.gauges {
        if name != last_name {
            let _ = writeln!(out, "# TYPE {name} gauge");
            last_name = name;
        }
        let _ = writeln!(
            out,
            "{name}{} {}",
            labels_block(labels, None),
            fmt_value(*value)
        );
    }

    last_name = "";
    for ((name, labels), h) in &inner.histograms {
        if name != last_name {
            let _ = writeln!(out, "# TYPE {name} histogram");
            last_name = name;
        }
        let mut cumulative = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cumulative += h.counts[i];
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                labels_block(labels, Some(("le", &fmt_value(*bound))))
            );
        }
        cumulative += h.counts[h.bounds.len()];
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            labels_block(labels, Some(("le", "+Inf")))
        );
        let _ = writeln!(out, "{name}_sum{} {}", labels_block(labels, None), h.sum);
        let _ = writeln!(out, "{name}_count{} {cumulative}", labels_block(labels, None));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn counters_and_gauges_render() {
        let r = MetricsRegistry::enabled();
        r.counter_add("tasks_completed_total", &[("kind", "vm")], 3);
        r.counter_add("tasks_completed_total", &[("kind", "lambda")], 5);
        r.gauge_set("pending_tasks", &[], 7.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE tasks_completed_total counter"));
        assert!(text.contains("tasks_completed_total{kind=\"vm\"} 3"));
        assert!(text.contains("tasks_completed_total{kind=\"lambda\"} 5"));
        assert!(text.contains("# TYPE pending_tasks gauge"));
        assert!(text.contains("pending_tasks 7"));
        // One TYPE header even with two series of the same name.
        assert_eq!(text.matches("# TYPE tasks_completed_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let r = MetricsRegistry::enabled();
        let bounds = [0.1, 1.0];
        r.observe_with("op_latency_seconds", &[("store", "hdfs")], &bounds, 0.05);
        r.observe_with("op_latency_seconds", &[("store", "hdfs")], &bounds, 0.5);
        r.observe_with("op_latency_seconds", &[("store", "hdfs")], &bounds, 9.0);
        let text = r.render_prometheus();
        assert!(text.contains("op_latency_seconds_bucket{store=\"hdfs\",le=\"0.1\"} 1"));
        assert!(text.contains("op_latency_seconds_bucket{store=\"hdfs\",le=\"1\"} 2"));
        assert!(text.contains("op_latency_seconds_bucket{store=\"hdfs\",le=\"+Inf\"} 3"));
        assert!(text.contains("op_latency_seconds_count{store=\"hdfs\"} 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::enabled();
        r.counter_add("weird_total", &[("p", "a\"b\\c")], 1);
        assert!(r.render_prometheus().contains("p=\"a\\\"b\\\\c\""));
    }
}
