//! Prometheus text exposition (version 0.0.4) of a [`MetricsRegistry`].
//!
//! The output is what a `/metrics` endpoint would serve; here it is
//! written to a file so experiment runs leave a scrapeable artifact next
//! to their tables. Counters end in `_total` by convention, histograms
//! expand to `_bucket{le=...}` / `_sum` / `_count` series.

use std::fmt::Write;

use crate::registry::MetricsRegistry;

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline are escaped.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a label set (possibly with an extra `le` pair) as `{k="v",...}`
/// or the empty string.
fn labels_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Formats a float the way Prometheus expects (`+Inf`, integers without
/// exponent noise).
fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the whole registry. One `# TYPE` header per metric name, series
/// in deterministic (BTreeMap) order. A disabled registry renders empty.
pub(crate) fn render(reg: &MetricsRegistry) -> String {
    let Some(inner) = &reg.inner else {
        return String::new();
    };
    let inner = crate::registry::lock(inner);
    let mut out = String::new();

    let mut last_name = "";
    for ((name, labels), cell) in &inner.counters {
        if name != last_name {
            let _ = writeln!(out, "# TYPE {name} counter");
            last_name = name;
        }
        let value = cell.load(std::sync::atomic::Ordering::Relaxed);
        let _ = writeln!(out, "{name}{} {value}", labels_block(labels, None));
    }

    last_name = "";
    for ((name, labels), value) in &inner.gauges {
        if name != last_name {
            let _ = writeln!(out, "# TYPE {name} gauge");
            last_name = name;
        }
        let _ = writeln!(
            out,
            "{name}{} {}",
            labels_block(labels, None),
            fmt_value(*value)
        );
    }

    last_name = "";
    for ((name, labels), cell) in &inner.histograms {
        let h = crate::registry::hist_lock(cell);
        if name != last_name {
            let _ = writeln!(out, "# TYPE {name} histogram");
            last_name = name;
        }
        let mut cumulative = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cumulative += h.counts[i];
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                labels_block(labels, Some(("le", &fmt_value(*bound))))
            );
        }
        cumulative += h.counts[h.bounds.len()];
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            labels_block(labels, Some(("le", "+Inf")))
        );
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            labels_block(labels, None),
            fmt_value(h.sum)
        );
        let _ = writeln!(out, "{name}_count{} {cumulative}", labels_block(labels, None));
    }

    // Streaming-digest quantiles, rendered as gauges (`<name>_quantile`
    // with a `quantile` label) so they cannot collide with a histogram of
    // the same base name. Values are within the digest's relative-error
    // bound (see the `digest` module).
    if let Some(shards) = &reg.digests {
        last_name = "";
        for ((name, labels), d) in &shards.merged() {
            if d.is_empty() {
                continue;
            }
            if name != last_name {
                let _ = writeln!(out, "# TYPE {name}_quantile gauge");
                last_name = name;
            }
            for q in [0.5, 0.9, 0.95, 0.99] {
                let Some(v) = d.quantile(q) else { continue };
                let _ = writeln!(
                    out,
                    "{name}_quantile{} {}",
                    labels_block(labels, Some(("quantile", &fmt_value(q)))),
                    fmt_value(v)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn counters_and_gauges_render() {
        let r = MetricsRegistry::enabled();
        r.counter_add("tasks_completed_total", &[("kind", "vm")], 3);
        r.counter_add("tasks_completed_total", &[("kind", "lambda")], 5);
        r.gauge_set("pending_tasks", &[], 7.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE tasks_completed_total counter"));
        assert!(text.contains("tasks_completed_total{kind=\"vm\"} 3"));
        assert!(text.contains("tasks_completed_total{kind=\"lambda\"} 5"));
        assert!(text.contains("# TYPE pending_tasks gauge"));
        assert!(text.contains("pending_tasks 7"));
        // One TYPE header even with two series of the same name.
        assert_eq!(text.matches("# TYPE tasks_completed_total").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let r = MetricsRegistry::enabled();
        let bounds = [0.1, 1.0];
        r.observe_with("op_latency_seconds", &[("store", "hdfs")], &bounds, 0.05);
        r.observe_with("op_latency_seconds", &[("store", "hdfs")], &bounds, 0.5);
        r.observe_with("op_latency_seconds", &[("store", "hdfs")], &bounds, 9.0);
        let text = r.render_prometheus();
        assert!(text.contains("op_latency_seconds_bucket{store=\"hdfs\",le=\"0.1\"} 1"));
        assert!(text.contains("op_latency_seconds_bucket{store=\"hdfs\",le=\"1\"} 2"));
        assert!(text.contains("op_latency_seconds_bucket{store=\"hdfs\",le=\"+Inf\"} 3"));
        assert!(text.contains("op_latency_seconds_count{store=\"hdfs\"} 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::enabled();
        r.counter_add("weird_total", &[("p", "a\"b\\c")], 1);
        assert!(r.render_prometheus().contains("p=\"a\\\"b\\\\c\""));
    }

    #[test]
    fn hostile_label_values_cannot_break_the_exposition() {
        // The full hostile triple of the text-format spec: backslash,
        // double quote and a raw newline, in one label value, across all
        // metric families. None may survive unescaped — a raw newline
        // would split the sample line and corrupt the whole scrape.
        let hostile = "a\\b\"c\nd";
        let r = MetricsRegistry::enabled();
        r.counter_add("h_total", &[("p", hostile)], 1);
        r.gauge_set("h_gauge", &[("p", hostile)], 2.0);
        r.observe_with("h_seconds", &[("p", hostile)], &[1.0], 0.5);
        r.record_quantile("h_digest_seconds", &[("p", hostile)], 0.5);
        let text = r.render_prometheus();
        let escaped = "p=\"a\\\\b\\\"c\\nd\"";
        assert!(text.contains(&format!("h_total{{{escaped}}} 1")));
        assert!(text.contains(&format!("h_gauge{{{escaped}}} 2")));
        assert!(text.contains(&format!("h_seconds_count{{{escaped}}} 1")));
        assert!(text.contains("h_digest_seconds_quantile{"));
        for line in text.lines() {
            assert!(
                !line.contains("a\\b\"c") || line.contains("a\\\\b\\\"c"),
                "unescaped hostile value leaked: {line}"
            );
        }
        // The raw (unescaped) newline must not have produced a dangling
        // continuation line anywhere.
        assert!(text.lines().all(|l| !l.starts_with('d') || l.starts_with("d=")));
    }

    #[test]
    fn digest_quantiles_render_as_gauges() {
        let r = MetricsRegistry::enabled();
        for i in 1..=100 {
            r.record_quantile("task_run_seconds", &[("kind", "vm")], i as f64 * 0.01);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE task_run_seconds_quantile gauge"));
        assert!(text.contains("task_run_seconds_quantile{kind=\"vm\",quantile=\"0.5\"}"));
        assert!(text.contains("task_run_seconds_quantile{kind=\"vm\",quantile=\"0.99\"}"));
        assert_eq!(
            text.matches("# TYPE task_run_seconds_quantile").count(),
            1
        );
    }

    #[test]
    fn histogram_sum_uses_prometheus_float_format() {
        let r = MetricsRegistry::enabled();
        r.observe_with("inf_seconds", &[], &[1.0], f64::INFINITY);
        let text = r.render_prometheus();
        assert!(text.contains("inf_seconds_sum +Inf"), "got: {text}");
    }
}
