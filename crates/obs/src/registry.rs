//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, each keyed by a label set.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::digest::QuantileDigest;

/// Default histogram buckets for operation latencies in (virtual)
/// seconds — spanning sub-millisecond block-store round-trips up to
/// minute-scale VM boots.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
];

/// `(name, sorted labels)` — the identity of one time series.
pub(crate) type MetricKey = (String, Vec<(String, String)>);

#[derive(Debug, Clone)]
pub(crate) struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// One count per finite bucket plus the `+Inf` bucket.
    pub counts: Vec<u64>,
    pub sum: f64,
    pub total: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }
}

/// A read-only copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets (`+Inf` is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

#[derive(Debug, Default)]
pub(crate) struct RegistryInner {
    pub counters: BTreeMap<MetricKey, u64>,
    pub gauges: BTreeMap<MetricKey, f64>,
    pub histograms: BTreeMap<MetricKey, Histogram>,
}

/// Shard count for quantile-digest recording. Each recording thread is
/// pinned to one shard, so worker-pool task bodies recording digest
/// samples contend (almost) only with themselves, never with the
/// simulation thread — the parallel data plane stays contention-free.
pub(crate) const DIGEST_SHARDS: usize = 8;

/// Round-robin shard assignment: each thread grabs the next shard index
/// the first time it records and keeps it for its lifetime.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static SHARD_IDX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % DIGEST_SHARDS;
}

/// Per-thread-sharded quantile digests. Records go to the calling
/// thread's shard; reads merge all shards. Digest merging is exactly
/// commutative/associative (count addition), so the merged view depends
/// only on the multiset of recorded values — never on which thread
/// recorded what.
#[derive(Debug)]
pub(crate) struct DigestShards {
    shards: [Mutex<BTreeMap<MetricKey, QuantileDigest>>; DIGEST_SHARDS],
}

impl DigestShards {
    fn new() -> Self {
        DigestShards {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    fn shard_lock(
        shard: &Mutex<BTreeMap<MetricKey, QuantileDigest>>,
    ) -> MutexGuard<'_, BTreeMap<MetricKey, QuantileDigest>> {
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record(&self, key: MetricKey, value: f64) {
        let idx = SHARD_IDX.with(|i| *i);
        Self::shard_lock(&self.shards[idx])
            .entry(key)
            .or_default()
            .record(value);
    }

    /// The merged digest for one key, if any shard recorded it.
    fn merged_for(&self, key: &MetricKey) -> Option<QuantileDigest> {
        let mut out: Option<QuantileDigest> = None;
        for shard in &self.shards {
            if let Some(d) = Self::shard_lock(shard).get(key) {
                match &mut out {
                    Some(m) => m.merge(d),
                    None => out = Some(d.clone()),
                }
            }
        }
        out
    }

    /// All digests, merged across shards, sorted by key.
    pub(crate) fn merged(&self) -> BTreeMap<MetricKey, QuantileDigest> {
        let mut out: BTreeMap<MetricKey, QuantileDigest> = BTreeMap::new();
        for shard in &self.shards {
            for (k, d) in Self::shard_lock(shard).iter() {
                match out.get_mut(k) {
                    Some(m) => m.merge(d),
                    None => {
                        out.insert(k.clone(), d.clone());
                    }
                }
            }
        }
        out
    }
}

/// Named counters, gauges and fixed-bucket histograms.
///
/// A disabled registry (the [`Default`]) holds no storage: every record
/// call is one branch. Clones of an enabled registry share storage, so a
/// handle can be threaded through engine, policy and storage layers while
/// one exporter reads the aggregate.
///
/// Storage is behind a `Mutex`, so clones may record from worker threads
/// (task bodies running on the engine's worker pool) concurrently with
/// the simulation thread. Counter and histogram updates commute, so the
/// aggregate is independent of thread interleaving.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    pub(crate) inner: Option<Arc<Mutex<RegistryInner>>>,
    /// Streaming quantile digests, sharded per recording thread (see
    /// [`DigestShards`]); merged lazily at snapshot/export time.
    pub(crate) digests: Option<Arc<DigestShards>>,
}

/// Locks a registry's storage, recovering from poison: a panicking task
/// body must not wedge the telemetry of the run that reports it.
pub(crate) fn lock(inner: &Arc<Mutex<RegistryInner>>) -> MutexGuard<'_, RegistryInner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl MetricsRegistry {
    /// A registry that records.
    pub fn enabled() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(RegistryInner::default()))),
            digests: Some(Arc::new(DigestShards::new())),
        }
    }

    /// A registry that drops everything (the [`Default`]).
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether record calls have any effect.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `name{labels}` (created at zero on
    /// first touch).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let Some(inner) = &self.inner else { return };
        *lock(inner)
            .counters
            .entry(key(name, labels))
            .or_insert(0) += delta;
    }

    /// Current value of a counter (zero if never touched or disabled).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        lock(inner)
            .counters
            .get(&key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        lock(inner).gauges.insert(key(name, labels), value);
    }

    /// Current value of a gauge, if it was ever set.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        lock(inner).gauges.get(&key(name, labels)).copied()
    }

    /// Records `value` into the histogram `name{labels}` using
    /// [`DEFAULT_LATENCY_BUCKETS`].
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.observe_with(name, labels, DEFAULT_LATENCY_BUCKETS, value);
    }

    /// Records `value` into the histogram `name{labels}`, creating it with
    /// `bounds` on first touch (later observations reuse the original
    /// bounds — a histogram's buckets are fixed at birth).
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
        let Some(inner) = &self.inner else { return };
        lock(inner)
            .histograms
            .entry(key(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Snapshot of one histogram, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let inner = self.inner.as_ref()?;
        lock(inner)
            .histograms
            .get(&key(name, labels))
            .map(|h| HistogramSnapshot {
                bounds: h.bounds.clone(),
                counts: h.counts.clone(),
                sum: h.sum,
                count: h.total,
            })
    }

    /// Records `value` into the streaming quantile digest `name{labels}`
    /// (created with [`crate::DEFAULT_DIGEST_ALPHA`] on first touch).
    /// Unlike [`MetricsRegistry::observe`], the digest answers arbitrary
    /// quantiles within a documented relative error instead of bucket
    /// resolution, and records shard per thread so worker-pool task
    /// bodies do not contend with the simulation thread.
    pub fn record_quantile(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(shards) = &self.digests else { return };
        shards.record(key(name, labels), value);
    }

    /// The merged (cross-shard) digest for `name{labels}`, if anything
    /// was recorded. The result depends only on the recorded multiset —
    /// byte-identical at any worker count.
    pub fn quantile_digest(&self, name: &str, labels: &[(&str, &str)]) -> Option<QuantileDigest> {
        self.digests.as_ref()?.merged_for(&key(name, labels))
    }

    /// The value at quantile `q` of the digest `name{labels}`, within the
    /// digest's relative-error bound. `None` when nothing was recorded.
    pub fn quantile_value(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        self.quantile_digest(name, labels)?.quantile(q)
    }

    /// Sum of a counter across all label sets sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        lock(inner)
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Renders every metric in Prometheus text exposition format (see the
    /// `prometheus` module for the grammar). Deterministic ordering.
    pub fn render_prometheus(&self) -> String {
        crate::prometheus::render(self)
    }

    /// Writes [`MetricsRegistry::render_prometheus`] to `path`.
    pub fn write_prometheus(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_prometheus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let r = MetricsRegistry::disabled();
        r.counter_add("a_total", &[], 5);
        r.gauge_set("g", &[], 1.0);
        r.observe("h", &[], 0.5);
        assert_eq!(r.counter_value("a_total", &[]), 0);
        assert_eq!(r.gauge_value("g", &[]), None);
        assert_eq!(r.histogram("h", &[]), None);
        assert!(r.render_prometheus().is_empty());
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = MetricsRegistry::enabled();
        r.counter_add("tasks_total", &[("kind", "vm")], 2);
        r.counter_add("tasks_total", &[("kind", "vm")], 1);
        r.counter_add("tasks_total", &[("kind", "lambda")], 7);
        assert_eq!(r.counter_value("tasks_total", &[("kind", "vm")]), 3);
        assert_eq!(r.counter_value("tasks_total", &[("kind", "lambda")]), 7);
        assert_eq!(r.counter_total("tasks_total"), 10);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = MetricsRegistry::enabled();
        r.counter_add("x_total", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter_value("x_total", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn histogram_buckets_count_correctly() {
        let r = MetricsRegistry::enabled();
        let bounds = [1.0, 10.0];
        r.observe_with("lat", &[], &bounds, 0.5); // bucket 0
        r.observe_with("lat", &[], &bounds, 1.0); // bucket 0 (le)
        r.observe_with("lat", &[], &bounds, 5.0); // bucket 1
        r.observe_with("lat", &[], &bounds, 99.0); // +Inf
        let h = r.histogram("lat", &[]).expect("exists");
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 105.5).abs() < 1e-9);
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::enabled();
        r.gauge_set("pending", &[], 3.0);
        r.gauge_set("pending", &[], 1.0);
        assert_eq!(r.gauge_value("pending", &[]), Some(1.0));
    }
}
