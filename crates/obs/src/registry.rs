//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, each keyed by a label set.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::digest::QuantileDigest;

/// Default histogram buckets for operation latencies in (virtual)
/// seconds — spanning sub-millisecond block-store round-trips up to
/// minute-scale VM boots.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
];

/// `(name, sorted labels)` — the identity of one time series.
pub(crate) type MetricKey = (String, Vec<(String, String)>);

#[derive(Debug, Clone)]
pub(crate) struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// One count per finite bucket plus the `+Inf` bucket.
    pub counts: Vec<u64>,
    pub sum: f64,
    pub total: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }
}

/// A read-only copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets (`+Inf` is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the last entry is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

#[derive(Debug, Default)]
pub(crate) struct RegistryInner {
    /// Counter cells are `Arc`-shared so a [`CounterHandle`] can alias
    /// one and bump it with a single atomic add, bypassing the key
    /// build + map walk of [`MetricsRegistry::counter_add`].
    pub counters: BTreeMap<MetricKey, Arc<AtomicU64>>,
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Histograms are `Arc<Mutex<_>>` for the same reason (see
    /// [`HistogramHandle`]).
    pub histograms: BTreeMap<MetricKey, Arc<Mutex<Histogram>>>,
}

/// Shard count for quantile-digest recording. Each recording thread is
/// pinned to one shard, so worker-pool task bodies recording digest
/// samples contend (almost) only with themselves, never with the
/// simulation thread — the parallel data plane stays contention-free.
pub(crate) const DIGEST_SHARDS: usize = 8;

/// Round-robin shard assignment: each thread grabs the next shard index
/// the first time it records and keeps it for its lifetime.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static SHARD_IDX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % DIGEST_SHARDS;
}

/// Per-thread-sharded quantile digests. Records go to the calling
/// thread's shard; reads merge all shards. Digest merging is exactly
/// commutative/associative (count addition), so the merged view depends
/// only on the multiset of recorded values — never on which thread
/// recorded what.
#[derive(Debug)]
pub(crate) struct DigestShards {
    /// Digest cells are `Arc<Mutex<_>>` so a [`QuantileHandle`] can alias
    /// its per-shard cell and record without the shard-map walk. Lock
    /// order is always shard map → digest cell; handles lock the cell
    /// alone, never the map, so the orders cannot interleave.
    shards: [Mutex<BTreeMap<MetricKey, Arc<Mutex<QuantileDigest>>>>; DIGEST_SHARDS],
}

type ShardMap = BTreeMap<MetricKey, Arc<Mutex<QuantileDigest>>>;

impl DigestShards {
    fn new() -> Self {
        DigestShards {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
        }
    }

    fn shard_lock(shard: &Mutex<ShardMap>) -> MutexGuard<'_, ShardMap> {
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn cell_lock(cell: &Mutex<QuantileDigest>) -> MutexGuard<'_, QuantileDigest> {
        cell.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record(&self, key: MetricKey, value: f64) {
        let idx = SHARD_IDX.with(|i| *i);
        let mut shard = Self::shard_lock(&self.shards[idx]);
        let cell = Arc::clone(shard.entry(key).or_default());
        drop(shard);
        Self::cell_lock(&cell).record(value);
    }

    /// The merged digest for one key, if any shard recorded it.
    fn merged_for(&self, key: &MetricKey) -> Option<QuantileDigest> {
        let mut out: Option<QuantileDigest> = None;
        for shard in &self.shards {
            if let Some(d) = Self::shard_lock(shard).get(key) {
                let d = Self::cell_lock(d);
                if d.is_empty() {
                    continue;
                }
                match &mut out {
                    Some(m) => m.merge(&d),
                    None => out = Some(d.clone()),
                }
            }
        }
        out
    }

    /// All digests, merged across shards, sorted by key. Cells a handle
    /// materialized but never recorded into are skipped, so resolving a
    /// handle is invisible until the first record — exactly like the
    /// string path, where the entry only exists once something recorded.
    pub(crate) fn merged(&self) -> BTreeMap<MetricKey, QuantileDigest> {
        let mut out: BTreeMap<MetricKey, QuantileDigest> = BTreeMap::new();
        for shard in &self.shards {
            for (k, d) in Self::shard_lock(shard).iter() {
                let d = Self::cell_lock(d);
                if d.is_empty() {
                    continue;
                }
                match out.get_mut(k) {
                    Some(m) => m.merge(&d),
                    None => {
                        out.insert(k.clone(), d.clone());
                    }
                }
            }
        }
        out
    }
}

/// Named counters, gauges and fixed-bucket histograms.
///
/// A disabled registry (the [`Default`]) holds no storage: every record
/// call is one branch. Clones of an enabled registry share storage, so a
/// handle can be threaded through engine, policy and storage layers while
/// one exporter reads the aggregate.
///
/// Storage is behind a `Mutex`, so clones may record from worker threads
/// (task bodies running on the engine's worker pool) concurrently with
/// the simulation thread. Counter and histogram updates commute, so the
/// aggregate is independent of thread interleaving.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    pub(crate) inner: Option<Arc<Mutex<RegistryInner>>>,
    /// Streaming quantile digests, sharded per recording thread (see
    /// [`DigestShards`]); merged lazily at snapshot/export time.
    pub(crate) digests: Option<Arc<DigestShards>>,
}

/// Locks a registry's storage, recovering from poison: a panicking task
/// body must not wedge the telemetry of the run that reports it.
pub(crate) fn lock(inner: &Arc<Mutex<RegistryInner>>) -> MutexGuard<'_, RegistryInner> {
    inner.lock().unwrap_or_else(|e| e.into_inner())
}

/// Locks one histogram cell, recovering from poison like [`lock`].
pub(crate) fn hist_lock(cell: &Mutex<Histogram>) -> MutexGuard<'_, Histogram> {
    cell.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Debug)]
struct CounterCore {
    registry: Arc<Mutex<RegistryInner>>,
    key: MetricKey,
    /// The counter's cell, materialized in the registry on first
    /// [`add`](CounterHandle::add) — a handle that never records leaves
    /// the registry (and therefore the rendered exposition) untouched,
    /// exactly like a counter name nobody ever added to.
    cell: OnceLock<Arc<AtomicU64>>,
}

/// A pre-resolved counter: the `(name, sorted labels)` key is built once
/// at wiring time; every [`add`](CounterHandle::add) after the first is a
/// single relaxed atomic bump — no allocation, no registry lock. Handles
/// from a disabled registry are inert (one branch per call). Cloning
/// shares the resolution.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<CounterCore>>);

impl CounterHandle {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        let Some(core) = &self.0 else { return };
        core.cell
            .get_or_init(|| {
                Arc::clone(
                    lock(&core.registry)
                        .counters
                        .entry(core.key.clone())
                        .or_default(),
                )
            })
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

#[derive(Debug)]
struct HistogramCore {
    registry: Arc<Mutex<RegistryInner>>,
    key: MetricKey,
    bounds: Vec<f64>,
    cell: OnceLock<Arc<Mutex<Histogram>>>,
}

/// A pre-resolved histogram: [`observe`](HistogramHandle::observe) after
/// the first is one uncontended mutex lock plus a bucket increment. The
/// cell is shared with the string path, so mixing `observe_with` calls
/// and handle observations lands in the same series.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<HistogramCore>>);

impl HistogramHandle {
    /// Records `value`.
    #[inline]
    pub fn observe(&self, value: f64) {
        let Some(core) = &self.0 else { return };
        let cell = core.cell.get_or_init(|| {
            Arc::clone(
                lock(&core.registry)
                    .histograms
                    .entry(core.key.clone())
                    .or_insert_with(|| Arc::new(Mutex::new(Histogram::new(&core.bounds)))),
            )
        });
        hist_lock(cell).observe(value);
    }
}

#[derive(Debug)]
struct QuantileCore {
    shards: Arc<DigestShards>,
    key: MetricKey,
    /// One lazily-materialized cell per digest shard — each recording
    /// thread touches only its own shard's cell, preserving the
    /// contention-free property of the sharded string path.
    cells: [OnceLock<Arc<Mutex<QuantileDigest>>>; DIGEST_SHARDS],
}

/// A pre-resolved streaming-quantile digest:
/// [`record`](QuantileHandle::record) after the first is one uncontended
/// mutex lock on the calling thread's shard cell plus the digest bucket
/// bump. Merged reads are unchanged — handle records and
/// [`MetricsRegistry::record_quantile`] land in the same shard maps.
#[derive(Debug, Clone, Default)]
pub struct QuantileHandle(Option<Arc<QuantileCore>>);

impl QuantileHandle {
    /// Records `value` into the calling thread's shard.
    #[inline]
    pub fn record(&self, value: f64) {
        let Some(core) = &self.0 else { return };
        let idx = SHARD_IDX.with(|i| *i);
        let cell = core.cells[idx].get_or_init(|| {
            Arc::clone(
                DigestShards::shard_lock(&core.shards.shards[idx])
                    .entry(core.key.clone())
                    .or_default(),
            )
        });
        DigestShards::cell_lock(cell).record(value);
    }
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

impl MetricsRegistry {
    /// A registry that records.
    pub fn enabled() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(RegistryInner::default()))),
            digests: Some(Arc::new(DigestShards::new())),
        }
    }

    /// A registry that drops everything (the [`Default`]).
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether record calls have any effect.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `name{labels}` (created at zero on
    /// first touch). This is the slow path: it builds and sorts a key on
    /// every call — hot loops should resolve a
    /// [`CounterHandle`](MetricsRegistry::counter_handle) once instead.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let Some(inner) = &self.inner else { return };
        lock(inner)
            .counters
            .entry(key(name, labels))
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a counter (zero if never touched or disabled).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        lock(inner)
            .counters
            .get(&key(name, labels))
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Resolves the counter `name{labels}` to a reusable [`CounterHandle`]
    /// — the key is built and sorted once, here; every
    /// [`add`](CounterHandle::add) after that is an atomic bump.
    pub fn counter_handle(&self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        CounterHandle(self.inner.as_ref().map(|inner| {
            Arc::new(CounterCore {
                registry: Arc::clone(inner),
                key: key(name, labels),
                cell: OnceLock::new(),
            })
        }))
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        lock(inner).gauges.insert(key(name, labels), value);
    }

    /// Current value of a gauge, if it was ever set.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        lock(inner).gauges.get(&key(name, labels)).copied()
    }

    /// Records `value` into the histogram `name{labels}` using
    /// [`DEFAULT_LATENCY_BUCKETS`].
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.observe_with(name, labels, DEFAULT_LATENCY_BUCKETS, value);
    }

    /// Records `value` into the histogram `name{labels}`, creating it with
    /// `bounds` on first touch (later observations reuse the original
    /// bounds — a histogram's buckets are fixed at birth).
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
        let Some(inner) = &self.inner else { return };
        let cell = Arc::clone(
            lock(inner)
                .histograms
                .entry(key(name, labels))
                .or_insert_with(|| Arc::new(Mutex::new(Histogram::new(bounds)))),
        );
        hist_lock(&cell).observe(value);
    }

    /// Snapshot of one histogram, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let inner = self.inner.as_ref()?;
        let cell = lock(inner).histograms.get(&key(name, labels)).cloned()?;
        let h = hist_lock(&cell);
        Some(HistogramSnapshot {
            bounds: h.bounds.clone(),
            counts: h.counts.clone(),
            sum: h.sum,
            count: h.total,
        })
    }

    /// Resolves the histogram `name{labels}` (created with
    /// [`DEFAULT_LATENCY_BUCKETS`] on first observation) to a reusable
    /// [`HistogramHandle`].
    pub fn histogram_handle(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        self.histogram_handle_with(name, labels, DEFAULT_LATENCY_BUCKETS)
    }

    /// Resolves the histogram `name{labels}` to a reusable
    /// [`HistogramHandle`], creating it with `bounds` on its first
    /// observation (string-path and handle observations share the cell).
    pub fn histogram_handle_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> HistogramHandle {
        HistogramHandle(self.inner.as_ref().map(|inner| {
            Arc::new(HistogramCore {
                registry: Arc::clone(inner),
                key: key(name, labels),
                bounds: bounds.to_vec(),
                cell: OnceLock::new(),
            })
        }))
    }

    /// Records `value` into the streaming quantile digest `name{labels}`
    /// (created with [`crate::DEFAULT_DIGEST_ALPHA`] on first touch).
    /// Unlike [`MetricsRegistry::observe`], the digest answers arbitrary
    /// quantiles within a documented relative error instead of bucket
    /// resolution, and records shard per thread so worker-pool task
    /// bodies do not contend with the simulation thread.
    pub fn record_quantile(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(shards) = &self.digests else { return };
        shards.record(key(name, labels), value);
    }

    /// Resolves the digest `name{labels}` to a reusable [`QuantileHandle`]
    /// that records straight into the calling thread's shard cell.
    pub fn quantile_handle(&self, name: &str, labels: &[(&str, &str)]) -> QuantileHandle {
        QuantileHandle(self.digests.as_ref().map(|shards| {
            Arc::new(QuantileCore {
                shards: Arc::clone(shards),
                key: key(name, labels),
                cells: std::array::from_fn(|_| OnceLock::new()),
            })
        }))
    }

    /// The merged (cross-shard) digest for `name{labels}`, if anything
    /// was recorded. The result depends only on the recorded multiset —
    /// byte-identical at any worker count.
    pub fn quantile_digest(&self, name: &str, labels: &[(&str, &str)]) -> Option<QuantileDigest> {
        self.digests.as_ref()?.merged_for(&key(name, labels))
    }

    /// The value at quantile `q` of the digest `name{labels}`, within the
    /// digest's relative-error bound. `None` when nothing was recorded.
    pub fn quantile_value(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        self.quantile_digest(name, labels)?.quantile(q)
    }

    /// Sum of a counter across all label sets sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        lock(inner)
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders every metric in Prometheus text exposition format (see the
    /// `prometheus` module for the grammar). Deterministic ordering.
    pub fn render_prometheus(&self) -> String {
        crate::prometheus::render(self)
    }

    /// Writes [`MetricsRegistry::render_prometheus`] to `path`.
    pub fn write_prometheus(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_prometheus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let r = MetricsRegistry::disabled();
        r.counter_add("a_total", &[], 5);
        r.gauge_set("g", &[], 1.0);
        r.observe("h", &[], 0.5);
        assert_eq!(r.counter_value("a_total", &[]), 0);
        assert_eq!(r.gauge_value("g", &[]), None);
        assert_eq!(r.histogram("h", &[]), None);
        assert!(r.render_prometheus().is_empty());
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = MetricsRegistry::enabled();
        r.counter_add("tasks_total", &[("kind", "vm")], 2);
        r.counter_add("tasks_total", &[("kind", "vm")], 1);
        r.counter_add("tasks_total", &[("kind", "lambda")], 7);
        assert_eq!(r.counter_value("tasks_total", &[("kind", "vm")]), 3);
        assert_eq!(r.counter_value("tasks_total", &[("kind", "lambda")]), 7);
        assert_eq!(r.counter_total("tasks_total"), 10);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = MetricsRegistry::enabled();
        r.counter_add("x_total", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter_value("x_total", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn histogram_buckets_count_correctly() {
        let r = MetricsRegistry::enabled();
        let bounds = [1.0, 10.0];
        r.observe_with("lat", &[], &bounds, 0.5); // bucket 0
        r.observe_with("lat", &[], &bounds, 1.0); // bucket 0 (le)
        r.observe_with("lat", &[], &bounds, 5.0); // bucket 1
        r.observe_with("lat", &[], &bounds, 99.0); // +Inf
        let h = r.histogram("lat", &[]).expect("exists");
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 105.5).abs() < 1e-9);
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::enabled();
        r.gauge_set("pending", &[], 3.0);
        r.gauge_set("pending", &[], 1.0);
        assert_eq!(r.gauge_value("pending", &[]), Some(1.0));
    }

    #[test]
    fn counter_handle_shares_the_string_path_series() {
        let r = MetricsRegistry::enabled();
        let h = r.counter_handle("mixed_total", &[("kind", "vm")]);
        h.add(2);
        r.counter_add("mixed_total", &[("kind", "vm")], 3);
        h.inc();
        assert_eq!(r.counter_value("mixed_total", &[("kind", "vm")]), 6);
        assert_eq!(r.counter_total("mixed_total"), 6);
    }

    #[test]
    fn histogram_handle_shares_the_string_path_series() {
        let r = MetricsRegistry::enabled();
        let h = r.histogram_handle_with("lat", &[], &[1.0, 10.0]);
        h.observe(0.5);
        r.observe_with("lat", &[], &[1.0, 10.0], 5.0);
        h.observe(99.0);
        let snap = r.histogram("lat", &[]).expect("exists");
        assert_eq!(snap.counts, vec![1, 1, 1]);
        assert_eq!(snap.count, 3);
    }

    #[test]
    fn quantile_handle_shares_the_string_path_digest() {
        let r = MetricsRegistry::enabled();
        let h = r.quantile_handle("run_seconds", &[("kind", "vm")]);
        for i in 1..=50 {
            h.record(i as f64);
        }
        for i in 51..=100 {
            r.record_quantile("run_seconds", &[("kind", "vm")], i as f64);
        }
        let d = r.quantile_digest("run_seconds", &[("kind", "vm")]).expect("recorded");
        assert_eq!(d.count(), 100);
    }

    #[test]
    fn unused_handles_leave_no_trace_in_the_exposition() {
        // Resolving handles at wiring time must not change the rendered
        // output of a run that never records through them — the pinned
        // byte-identity of `render_prometheus` depends on it.
        let r = MetricsRegistry::enabled();
        r.counter_add("real_total", &[], 1);
        let before = r.render_prometheus();
        let _c = r.counter_handle("never_total", &[("k", "v")]);
        let _h = r.histogram_handle("never_seconds", &[]);
        let _q = r.quantile_handle("never_digest", &[]);
        assert_eq!(r.render_prometheus(), before);
        assert_eq!(r.counter_value("never_total", &[("k", "v")]), 0);
    }

    #[test]
    fn handles_from_a_disabled_registry_are_inert() {
        let r = MetricsRegistry::disabled();
        let c = r.counter_handle("a_total", &[]);
        let h = r.histogram_handle("b_seconds", &[]);
        let q = r.quantile_handle("c_seconds", &[]);
        c.add(5);
        h.observe(1.0);
        q.record(1.0);
        assert!(r.render_prometheus().is_empty());
    }

    #[test]
    fn cloned_handles_share_resolution() {
        let r = MetricsRegistry::enabled();
        let a = r.counter_handle("cloned_total", &[]);
        let b = a.clone();
        a.add(1);
        b.add(2);
        assert_eq!(r.counter_value("cloned_total", &[]), 3);
    }
}
