//! Property tests for the streaming quantile digest: the three claims the
//! telemetry plane leans on.
//!
//! 1. **Merge is commutative and associative** — byte-identical canonical
//!    state regardless of merge tree shape or order.
//! 2. **Rank-error bound** — every reported quantile is within relative
//!    error `alpha` of the exact order statistic of a sorted reference,
//!    including on adversarial (heavy-tailed, clustered, mixed-sign)
//!    distributions.
//! 3. **Partition independence** — splitting a stream across 1 or 4
//!    "workers" and merging yields byte-identical snapshots, the invariant
//!    that lets per-worker digests merge at snapshot time without breaking
//!    the engine's any-worker-count determinism contract.

use splitserve_obs::QuantileDigest;
use splitserve_rt::check::{self, Gen};

/// Generates an adversarial value stream: uniform, heavy-tailed
/// (log-scale magnitudes down to 1e-12 and up to 1e12), tightly
/// clustered, or sign-mixed — chosen per case.
fn adversarial_values(g: &mut Gen) -> Vec<f64> {
    let n = g.usize_in(1, 800);
    let shape = g.usize_in(0, 3);
    (0..n)
        .map(|_| {
            let v = match shape {
                // Uniform.
                0 => g.f64_in(-100.0, 100.0),
                // Heavy-tailed: exponents straddling the digest's
                // MIN_TRACKABLE cutoff and f64's comfortable range.
                1 => {
                    let exp = g.f64_in(-12.0, 12.0);
                    10f64.powf(exp)
                }
                // Tight cluster around one point (quantile plateaus).
                2 => 42.0 + g.f64_in(-1e-6, 1e-6),
                // Mixed-sign bimodal.
                _ => {
                    if g.bool() {
                        g.f64_in(-1000.0, -1.0)
                    } else {
                        g.f64_in(1.0, 1000.0)
                    }
                }
            };
            if g.usize_in(0, 99) == 0 {
                0.0
            } else {
                v
            }
        })
        .collect()
}

#[test]
fn merge_is_commutative_and_associative() {
    check::run("digest_merge_commutative_associative", 200, |g| {
        let a_vals = adversarial_values(g);
        let b_vals = adversarial_values(g);
        let c_vals = adversarial_values(g);
        let digest_of = |vals: &[f64]| {
            let mut d = QuantileDigest::default();
            for v in vals {
                d.record(*v);
            }
            d
        };
        let (a, b, c) = (digest_of(&a_vals), digest_of(&b_vals), digest_of(&c_vals));

        // Commutativity: a+b == b+a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.canonical_bytes(), ba.canonical_bytes(), "merge not commutative");

        // Associativity: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(
            ab_c.canonical_bytes(),
            a_bc.canonical_bytes(),
            "merge not associative"
        );

        // And both equal the single-stream digest over the concatenation.
        let mut whole = QuantileDigest::default();
        for v in a_vals.iter().chain(&b_vals).chain(&c_vals) {
            whole.record(*v);
        }
        assert_eq!(ab_c.canonical_bytes(), whole.canonical_bytes());
    });
}

#[test]
fn quantiles_stay_within_the_relative_error_bound() {
    check::run("digest_rank_error_bound", 200, |g| {
        let values = adversarial_values(g);
        let mut d = QuantileDigest::default();
        for v in &values {
            d.record(*v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let alpha = d.alpha();
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
            let exact = sorted[rank];
            let est = d.quantile(q).expect("non-empty digest");
            // Relative error bound on the magnitude; the sub-MIN_TRACKABLE
            // band collapses to the exact zero bucket.
            let tolerance = alpha * exact.abs() + 1e-9;
            assert!(
                (est - exact).abs() <= tolerance,
                "q={q}: est {est} vs exact {exact} (n={}, tol {tolerance})",
                sorted.len()
            );
        }
    });
}

#[test]
fn partitioned_recording_is_byte_identical_to_single_stream() {
    check::run("digest_partition_independence", 200, |g| {
        let values = adversarial_values(g);
        // workers=1: one digest records everything.
        let mut single = QuantileDigest::default();
        for v in &values {
            single.record(*v);
        }
        // workers=4: round-robin partitions merged in a scrambled order.
        let mut shards = [
            QuantileDigest::default(),
            QuantileDigest::default(),
            QuantileDigest::default(),
            QuantileDigest::default(),
        ];
        for (i, v) in values.iter().enumerate() {
            shards[i % 4].record(*v);
        }
        let order = match g.usize_in(0, 2) {
            0 => [0, 1, 2, 3],
            1 => [3, 1, 0, 2],
            _ => [2, 3, 1, 0],
        };
        let mut merged = QuantileDigest::default();
        for idx in order {
            merged.merge(&shards[idx]);
        }
        assert_eq!(
            merged.canonical_bytes(),
            single.canonical_bytes(),
            "partitioned digest diverged from the single stream"
        );
    });
}

#[test]
fn non_finite_inputs_survive_partitioned_merges() {
    check::run("digest_nonfinite_partitioned", 50, |g| {
        let n = g.usize_in(1, 200);
        let values: Vec<f64> = (0..n)
            .map(|_| match g.usize_in(0, 9) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => g.f64_in(-10.0, 10.0),
            })
            .collect();
        let mut single = QuantileDigest::default();
        let mut a = QuantileDigest::default();
        let mut b = QuantileDigest::default();
        for (i, v) in values.iter().enumerate() {
            single.record(*v);
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a.canonical_bytes(), single.canonical_bytes());
        assert_eq!(a.dropped(), single.dropped());
    });
}
