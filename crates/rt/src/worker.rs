//! A small fixed-size worker-thread pool for offloading task bodies.
//!
//! The engine's scheduler stays a single-threaded discrete-event loop,
//! but task *compute* (map pipelines, shuffle combine+encode, reduce-side
//! decode+merge) is pure with respect to the simulation: it reads a
//! snapshot of `Send`-able inputs and returns encoded blocks. This pool
//! runs those bodies on real OS threads so wall-clock throughput scales
//! with cores while the event order — and therefore every virtual
//! timestamp — stays byte-identical to the single-threaded run (see
//! DESIGN.md "Parallel task data plane").
//!
//! The pool is deliberately minimal and dependency-free: `N` threads
//! loop over one shared channel of boxed jobs; each submission gets its
//! own result channel. Panics inside a job are caught on the worker and
//! re-raised at the join point on the submitting thread, so a failing
//! task body surfaces exactly where the inline execution path would have
//! panicked.
//!
//! # Examples
//!
//! ```
//! use splitserve_rt::worker::WorkerPool;
//!
//! let pool = WorkerPool::new(2);
//! let a = pool.submit(|| 20 + 1);
//! let b = pool.submit(|| 21 + 1);
//! assert_eq!(a.join() + b.join(), 43);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads consuming jobs from one shared
/// queue. Dropping the pool closes the queue and joins every worker.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> WorkerPool {
        assert!(threads > 0, "worker pool needs at least one thread");
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("splitserve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while dequeuing, never while
                        // running the job, so workers drain in parallel.
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // queue closed: pool dropped
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits `f` to run on some worker; returns a handle whose
    /// [`TaskHandle::join`] blocks for — and returns — the result.
    pub fn submit<T, F>(&self, f: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = channel();
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            // A receiver that hung up means the submitter abandoned the
            // task; the result (or panic payload) is simply dropped.
            let _ = tx.send(result);
        });
        self.tx
            .as_ref()
            .expect("worker pool already shut down")
            .send(job)
            .expect("worker pool hung up");
        TaskHandle { rx }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the sender ends every worker's recv loop.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The pending result of one submitted job.
pub struct TaskHandle<T> {
    rx: Receiver<thread::Result<T>>,
}

impl<T> std::fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TaskHandle")
    }
}

impl<T> TaskHandle<T> {
    /// Blocks until the job finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic if it panicked, and panics if the pool
    /// was torn down before the job produced a result.
    pub fn join(self) -> T {
        match self.rx.recv() {
            Ok(Ok(v)) => v,
            Ok(Err(payload)) => resume_unwind(payload),
            Err(_) => panic!("worker task dropped without producing a result"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_per_submission() {
        let pool = WorkerPool::new(4);
        let handles: Vec<_> = (0..32u64).map(|i| pool.submit(move || i * i)).collect();
        let got: Vec<u64> = handles.into_iter().map(|h| h.join()).collect();
        let expect: Vec<u64> = (0..32).map(|i| i * i).collect();
        assert_eq!(got, expect, "results map to their own submissions");
    }

    #[test]
    fn join_can_happen_out_of_submission_order() {
        let pool = WorkerPool::new(2);
        let a = pool.submit(|| "a");
        let b = pool.submit(|| "b");
        assert_eq!(b.join(), "b");
        assert_eq!(a.join(), "a");
    }

    #[test]
    fn panics_propagate_to_the_join_point() {
        let pool = WorkerPool::new(1);
        let h = pool.submit(|| -> u32 { panic!("task body exploded") });
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| h.join()))
            .expect_err("join must re-raise");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("exploded"), "panic payload survives: {msg:?}");
        // The worker survives a panicking job.
        assert_eq!(pool.submit(|| 7u32).join(), 7);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(3);
        let h = pool.submit(|| 1u8);
        assert_eq!(h.join(), 1);
        drop(pool); // must not hang
    }
}
