//! Global string interning: copyable `u32` handles for hot-loop names.
//!
//! The scheduler's steady-state path used to clone executor-name
//! `String`s on every dispatch, completion event, shuffle block id and
//! flight-recorder entry — at fleet scale (100 tenants × 10.5k jobs)
//! that churn dominated wall-clock. The fix is the classic one: a
//! process-wide, append-only interner maps each distinct name to a dense
//! `u32` symbol exactly once; everything downstream carries the symbol.
//!
//! [`Interned`] is the typed handle. It is `Copy`, compares and hashes
//! by symbol in O(1), and resolves back to `&'static str` (names are
//! leaked — bounded by the number of *distinct* names a process ever
//! sees, which for executor ids is a few hundred). `Ord` compares the
//! resolved names, **not** the symbols: scheduler tables sorted by
//! `Interned` must iterate in the same lexicographic order the old
//! `BTreeMap<String, _>` did, or dispatch order (and therefore every
//! virtual-time artifact) would shift with registration order.
//!
//! # Examples
//!
//! ```
//! use splitserve_rt::intern::Interned;
//!
//! let a = Interned::new("e-vm-0001");
//! let b = Interned::new("e-vm-0001");
//! assert_eq!(a, b);                       // same name, same symbol
//! assert_eq!(a.as_str(), "e-vm-0001");    // O(1)-ish resolution
//! assert!(a < Interned::new("lambda-0000")); // name order, not intern order
//! ```

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, RwLock};

struct InternTables {
    /// name → symbol, guarding against double-interning.
    map: Mutex<HashMap<&'static str, u32>>,
    /// symbol → name, append-only.
    names: RwLock<Vec<&'static str>>,
}

fn tables() -> &'static InternTables {
    static TABLES: OnceLock<InternTables> = OnceLock::new();
    TABLES.get_or_init(|| InternTables {
        map: Mutex::new(HashMap::new()),
        names: RwLock::new(Vec::new()),
    })
}

/// Interns `name`, returning its dense symbol. Idempotent: the same
/// string always maps to the same symbol for the life of the process.
pub fn intern(name: &str) -> u32 {
    let t = tables();
    let mut map = t.map.lock().expect("interner poisoned");
    if let Some(&sym) = map.get(name) {
        return sym;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let mut names = t.names.write().expect("interner poisoned");
    let sym = u32::try_from(names.len()).expect("interner overflow");
    names.push(leaked);
    map.insert(leaked, sym);
    sym
}

/// Resolves a symbol back to its name.
///
/// # Panics
///
/// Panics if `sym` was not produced by [`intern`] in this process.
pub fn resolve(sym: u32) -> &'static str {
    tables().names.read().expect("interner poisoned")[sym as usize]
}

/// A copyable handle to an interned string.
///
/// `Eq`/`Hash` are O(1) on the symbol; `Ord` compares the resolved
/// names so sorted containers keep string order (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interned(u32);

impl Interned {
    /// Interns `name` (or finds its existing symbol) and returns the handle.
    pub fn new(name: &str) -> Interned {
        Interned(intern(name))
    }

    /// The dense symbol backing this handle.
    #[inline]
    pub fn sym(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a symbol previously obtained via [`Interned::sym`].
    #[inline]
    pub fn from_sym(sym: u32) -> Interned {
        Interned(sym)
    }

    /// The interned name. O(1) table lookup behind an uncontended read lock.
    #[inline]
    pub fn as_str(self) -> &'static str {
        resolve(self.0)
    }
}

impl PartialOrd for Interned {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Interned {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::fmt::Display for Interned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for Interned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Interned({:?})", self.as_str())
    }
}

impl From<&str> for Interned {
    fn from(s: &str) -> Interned {
        Interned::new(s)
    }
}

impl From<&String> for Interned {
    fn from(s: &String) -> Interned {
        Interned::new(s)
    }
}

impl From<String> for Interned {
    fn from(s: String) -> Interned {
        Interned::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_symbol() {
        let a = Interned::new("intern-test-alpha");
        let b = Interned::new("intern-test-alpha");
        let c = Interned::new("intern-test-beta");
        assert_eq!(a, b);
        assert_eq!(a.sym(), b.sym());
        assert_ne!(a, c);
    }

    #[test]
    fn resolves_roundtrip() {
        let a = Interned::new("intern-test-roundtrip");
        assert_eq!(a.as_str(), "intern-test-roundtrip");
        assert_eq!(Interned::from_sym(a.sym()), a);
        assert_eq!(resolve(intern("intern-test-roundtrip")), "intern-test-roundtrip");
    }

    #[test]
    fn ord_is_name_order_not_intern_order() {
        // Intern in reverse lexicographic order; Ord must still sort by name.
        let z = Interned::new("intern-test-ord-z");
        let a = Interned::new("intern-test-ord-a");
        assert!(a < z, "Ord must compare names, not symbols");
        let mut v = [z, a];
        v.sort();
        assert_eq!(v[0].as_str(), "intern-test-ord-a");
    }

    #[test]
    fn display_and_debug_show_the_name() {
        let a = Interned::new("intern-test-display");
        assert_eq!(format!("{a}"), "intern-test-display");
        assert!(format!("{a:?}").contains("intern-test-display"));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Interned::new("intern-test-concurrent").sym()))
            .collect();
        let syms: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
