//! Shared byte buffers for shuffle blocks.
//!
//! [`Bytes`] is an immutable, cheaply-clonable view into a reference-counted
//! buffer: cloning or slicing never copies the payload, which is what lets
//! one map output fan out to many reduce-side readers without duplicating
//! memory. [`BytesMut`] is the growable writer half; [`BytesMut::freeze`]
//! converts the accumulated buffer into a [`Bytes`] without copying.

use std::fmt;
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones and slices share
/// the underlying allocation.
///
/// # Examples
///
/// ```
/// use splitserve_rt::Bytes;
///
/// let b = Bytes::from(vec![1u8, 2, 3, 4]);
/// let tail = b.slice(2..);
/// assert_eq!(&tail[..], &[3, 4]);
/// assert_eq!(b.len(), 4); // the original view is unaffected
/// ```
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `bytes` into a fresh shared buffer.
    ///
    /// This is a single copy straight into the shared allocation, and the
    /// result holds exactly `bytes.len()` bytes — snapshotting a pooled
    /// scratch buffer through here never pins its spare capacity.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        let end = bytes.len();
        Bytes {
            buf: Arc::from(bytes),
            start: 0,
            end,
        }
    }

    /// Number of bytes in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies this view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            buf: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer: the writer half of [`Bytes`].
///
/// # Examples
///
/// ```
/// use splitserve_rt::BytesMut;
///
/// let mut w = BytesMut::with_capacity(16);
/// w.put_slice(b"shuffle");
/// w.put_u8(b'!');
/// let frozen = w.freeze();
/// assert_eq!(&frozen[..], b"shuffle!");
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty writer.
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    /// An empty writer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.vec.extend_from_slice(bytes);
    }

    /// Reserves room for at least `additional` more bytes, so a caller
    /// with a size hint pays one allocation instead of doubling growth.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Clears the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Bytes the writer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Unwraps the underlying vector (e.g. to return it to
    /// [`crate::pool`]).
    pub fn into_vec(self) -> Vec<u8> {
        self.vec
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.vec.push(b);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts the accumulated buffer into an immutable [`Bytes`] without
    /// copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> BytesMut {
        BytesMut { vec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn slices_alias_and_nest() {
        let a = Bytes::from((0u8..32).collect::<Vec<_>>());
        let mid = a.slice(8..24);
        let inner = mid.slice(4..8);
        assert_eq!(&inner[..], &[12, 13, 14, 15]);
        assert!(std::ptr::eq(a.as_ref()[12..].as_ptr(), inner.as_ref().as_ptr()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..9);
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut w = BytesMut::new();
        w.put_slice(b"abc");
        w.put_u8(b'd');
        assert_eq!(w.len(), 4);
        assert_eq!(&w.freeze()[..], b"abcd");
    }
}
