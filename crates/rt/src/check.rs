//! A deterministic property-testing harness.
//!
//! `proptest` is not available in the hermetic build, and its shrinking
//! machinery is more than these suites need: every simulator run is already
//! a pure function of its seed, so "the failing seed" *is* the minimal
//! reproducer. [`run`] executes a property over a fixed budget of seeded
//! cases; when a case fails it reports the case seed so the failure can be
//! replayed exactly with `SPLITSERVE_CHECK_SEED=<seed> cargo test`.
//!
//! # Examples
//!
//! ```
//! use splitserve_rt::check;
//!
//! check::run("addition_commutes", 64, |g| {
//!     let a: u32 = g.rng().gen();
//!     let b: u32 = g.rng().gen();
//!     assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//! });
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::Rng;

/// Environment variable that replays a single failing case by seed.
pub const SEED_ENV: &str = "SPLITSERVE_CHECK_SEED";

/// A source of random test inputs for one property case.
///
/// Wraps an [`Rng`] with generation helpers for the shapes the suites
/// need: bounded collections, strings and free-form scalars.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// A generator for case seed `seed`.
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// The underlying PRNG, for free-form draws.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// A uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..hi)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// A `bool` with probability 1/2.
    pub fn bool(&mut self) -> bool {
        self.rng.gen()
    }

    /// An `f64` with a fully random bit pattern (may be NaN, ±∞ or
    /// subnormal) — for bitwise round-trip properties.
    pub fn f64_bits(&mut self) -> f64 {
        f64::from_bits(self.rng.gen())
    }

    /// An `f32` with a fully random bit pattern.
    pub fn f32_bits(&mut self) -> f32 {
        f32::from_bits(self.rng.gen())
    }

    /// A finite `f64` drawn from random bits (resampled until non-NaN and
    /// finite) — for properties comparing with `==`.
    pub fn f64_finite(&mut self) -> f64 {
        loop {
            let v = self.f64_bits();
            if v.is_finite() {
                return v;
            }
        }
    }

    /// A `Vec` of `len ∈ [lo, hi)` elements drawn by `f`.
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(lo, hi.max(lo + 1));
        (0..n).map(|_| f(self)).collect()
    }

    /// A random byte vector with `len ∈ [lo, hi)`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let n = self.usize_in(lo, hi.max(lo + 1));
        let mut v = vec![0u8; n];
        self.rng.fill(&mut v);
        v
    }

    /// An ASCII-lowercase string with `len ∈ [lo, hi)`.
    pub fn lowercase(&mut self, lo: usize, hi: usize) -> String {
        let n = self.usize_in(lo, hi.max(lo + 1));
        (0..n)
            .map(|_| (b'a' + self.rng.bounded_u64(26) as u8) as char)
            .collect()
    }

    /// A string of `len ∈ [lo, hi)` arbitrary Unicode scalar values
    /// (resampled past the surrogate gap).
    pub fn string(&mut self, lo: usize, hi: usize) -> String {
        let n = self.usize_in(lo, hi.max(lo + 1));
        (0..n)
            .map(|_| loop {
                if let Some(c) = char::from_u32(self.rng.next_u32() % 0x11_0000) {
                    break c;
                }
            })
            .collect()
    }
}

/// FNV-1a over the property name: a stable per-property base seed, so every
/// property explores its own deterministic case sequence.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `property` over `cases` deterministic seeded cases.
///
/// Each case gets a fresh [`Gen`] whose seed is derived from the property
/// name and case index. If the property panics, the harness reports the
/// case seed and re-raises the panic; setting [`SEED_ENV`] replays exactly
/// that one case.
///
/// # Panics
///
/// Re-raises the first failing case's panic after printing the reproducer.
pub fn run<F: FnMut(&mut Gen)>(name: &str, cases: u32, mut property: F) {
    if let Ok(fixed) = std::env::var(SEED_ENV) {
        let seed: u64 = fixed
            .parse()
            .unwrap_or_else(|_| panic!("{SEED_ENV} must be a u64, got {fixed:?}"));
        eprintln!("check '{name}': replaying single case with seed {seed}");
        property(&mut Gen::from_seed(seed));
        return;
    }
    let base = name_seed(name);
    for case in 0..cases {
        // SplitMix64-style derivation keeps case seeds decorrelated even
        // though (base, case) pairs are structured.
        let mut mix = base ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        mix = (mix ^ (mix >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let seed = mix ^ (mix >> 27);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut Gen::from_seed(seed))));
        if let Err(payload) = result {
            eprintln!(
                "check '{name}' failed at case {case}/{cases} (seed {seed}); \
                 replay with {SEED_ENV}={seed}"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        run("counts_cases", 10, |_| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run("always_fails", 5, |_| panic!("boom"));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn case_seeds_are_deterministic() {
        let mut a = Vec::new();
        run("seed_capture", 5, |g| a.push(g.u64()));
        let mut b = Vec::new();
        run("seed_capture", 5, |g| b.push(g.u64()));
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0] != w[1]), "cases must differ");
    }

    #[test]
    fn generators_respect_bounds() {
        run("generator_bounds", 32, |g| {
            assert!((3..10).contains(&g.usize_in(3, 10)));
            assert!((-1.0..1.0).contains(&g.f64_in(-1.0, 1.0)));
            let v = g.vec(0, 5, |g| g.bool());
            assert!(v.len() < 5);
            let s = g.lowercase(1, 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let u = g.string(0, 6);
            assert!(u.chars().count() < 6);
        });
    }
}
