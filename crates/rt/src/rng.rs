//! A seedable, deterministic PRNG: xoshiro256++ with SplitMix64 seeding.
//!
//! All stochastic behaviour in the workspace draws from this generator, so
//! every experiment is reproducible from its seed alone — on any machine,
//! with any toolchain, forever. The algorithm (Blackman & Vigna's
//! xoshiro256++ 1.0) passes BigCrush and is the same family `rand`'s
//! `SmallRng` used on 64-bit targets; the streams themselves are now pinned
//! in-tree instead of floating with an external crate version.

use std::ops::Range;

/// A 256-bit-state xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use splitserve_rt::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let x: f64 = a.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// Migration alias: call sites ported from `rand::rngs::SmallRng` keep
/// their type name.
pub type SmallRng = Rng;

/// One step of the SplitMix64 sequence, used to expand a 64-bit seed into
/// the 256-bit xoshiro state (the expansion recommended by the authors).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream index (partition number, task index,
/// …) into a decorrelated derived seed, via the SplitMix64 finalizer.
///
/// This is the canonical per-task seeding rule of the workspace: a task
/// computing partition `p` of a dataset seeded `s` draws from
/// `Rng::seed_from_u64(derive_seed(s, p))`, which is a pure function of
/// `(s, p)` — the same stream whether the task runs inline, on any
/// worker thread, or is recomputed after a failure.
///
/// # Examples
///
/// ```
/// use splitserve_rt::rng::derive_seed;
///
/// assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
/// assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
/// assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
/// ```
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator for stream `stream` of base seed `seed` —
    /// shorthand for `seed_from_u64(derive_seed(seed, stream))`, the
    /// per-task seeding rule (see [`derive_seed`]).
    pub fn for_stream(seed: u64, stream: u64) -> Rng {
        Rng::seed_from_u64(derive_seed(seed, stream))
    }

    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next 64 uniformly random bits (xoshiro256++ output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits (high half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled by 2^-53: every representable value in [0,1)
        // at that granularity, never 1.0.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random value of a primitive type (`u8`…`u64`, signed
    /// integers, `usize`, `bool`, or a `f32`/`f64` in `[0, 1)`).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`start >= end`).
    #[inline]
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// An unbiased uniform integer in `[0, bound)` (Lemire's method with
    /// rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 with zero bound");
        // Widening multiply maps the 64-bit stream onto [0, bound); the
        // rejection zone removes the modulo bias exactly.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffles `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.bounded_u64(xs.len() as u64) as usize])
        }
    }

    /// Fills `dest` with uniformly random bytes.
    pub fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let tail = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&tail[..rest.len()]);
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Sample {
    /// Draws one uniformly random value.
    fn sample(rng: &mut Rng) -> Self;
}

macro_rules! sample_int {
    ($($ty:ty),*) => {$(
        impl Sample for $ty {
            #[inline]
            fn sample(rng: &mut Rng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        rng.next_f64()
    }
}
impl Sample for f32 {
    #[inline]
    fn sample(rng: &mut Rng) -> f32 {
        // 24 high bits scaled by 2^-24.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can draw over a half-open range.
pub trait SampleUniform: Sized {
    /// A uniform value in `[lo, hi)`; panics if the range is empty.
    fn sample_range(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_range(rng: &mut Rng, lo: $ty, hi: $ty) -> $ty {
                assert!(lo < hi, "gen_range over empty range: {lo}..{hi}");
                lo + rng.bounded_u64((hi - lo) as u64) as $ty
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($ty:ty => $u:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_range(rng: &mut Rng, lo: $ty, hi: $ty) -> $ty {
                assert!(lo < hi, "gen_range over empty range: {lo}..{hi}");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(rng.bounded_u64(span as u64) as $ty)
            }
        }
    )*};
}
uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_range(rng: &mut Rng, lo: $ty, hi: $ty) -> $ty {
                assert!(lo < hi, "gen_range over empty range: {lo}..{hi}");
                let v = lo + (hi - lo) * (rng.next_f64() as $ty);
                // Rounding can land exactly on `hi` when the interval is
                // tiny; fold that boundary case back to `lo` so the range
                // stays half-open.
                if v < hi { v } else { lo }
            }
        }
    )*};
}
uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(0);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: u64 = Rng::seed_from_u64(1).gen();
        let b: u64 = Rng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input in order");
    }

    #[test]
    fn fill_covers_unaligned_tails() {
        let mut rng = Rng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = Rng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
