//! # splitserve-rt — the in-tree runtime
//!
//! The SplitServe reproduction must build and test **hermetically**: the
//! build environment has no reachable crate registry, and the benchmark
//! trajectory is only trustworthy if the baseline is byte-for-byte
//! deterministic. This crate supplies the three third-party surfaces the
//! workspace used to import, with zero dependencies of its own:
//!
//! * [`rng`] — a seedable xoshiro256++ PRNG (SplitMix64 seeding) with the
//!   `seed_from_u64` / `gen` / `gen_range` / `gen_bool` / `shuffle` / `fill`
//!   surface the simulator, workloads and benches draw from. Unlike an
//!   external `rand`, its streams are frozen forever: a seed recorded in
//!   `results_paper.txt` replays identically on any toolchain.
//! * [`bytes`] — a cheap-to-clone shared byte buffer ([`bytes::Bytes`]) and
//!   a growable writer ([`bytes::BytesMut`]) used for shuffle blocks.
//! * [`check`] — a deterministic property-testing harness (seeded case
//!   generation, fixed iteration budget, failing-seed reporting) that the
//!   workspace's property suites run on.
//!
//! Three further modules serve the parallel shuffle data plane:
//!
//! * [`hash`] — a seeded XXH64 hasher with a fixed shuffle seed, so
//!   bucket placement is fast *and* frozen across runs and toolchains.
//! * [`pool`] — a bounded pool of reusable byte buffers (per-thread
//!   lock-free free lists, process-wide aggregated stats) that damps
//!   per-task encode allocations.
//! * [`worker`] — a fixed-size worker-thread pool the engine offloads
//!   task bodies onto; [`rng::derive_seed`] is the per-task seeding rule
//!   that keeps those bodies deterministic wherever they run.
//! * [`intern`] — a process-wide string interner handing out copyable
//!   `u32` symbols ([`Interned`]); executor ids and other hot-loop names
//!   ride on it so the scheduler's steady-state path never clones a
//!   `String`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytes;
pub mod check;
pub mod hash;
pub mod intern;
pub mod pool;
pub mod rng;
pub mod worker;

pub use bytes::{Bytes, BytesMut};
pub use hash::{FastMap, FastSet};
pub use intern::Interned;
pub use rng::Rng;
pub use worker::{TaskHandle, WorkerPool};
