//! A per-thread pool of reusable byte buffers with cross-thread stats.
//!
//! Every shuffle map task encodes its output into freshly grown `Vec`s,
//! and a wide stage runs thousands of tasks — under the old path the
//! allocator served (and immediately reclaimed) one multi-kilobyte
//! buffer per bucket per task. The pool recycles those buffers: a task
//! [`take`]s a buffer with at least the capacity its size hint predicts,
//! fills it, snapshots the bytes into an exact-sized block, and
//! [`give`]s the buffer back for the next task.
//!
//! The pool is deliberately modest and bounded — it is a steady-state
//! allocation damper, not a general allocator:
//!
//! - the buffer free lists are **thread-local and lock-free**: with task
//!   bodies running on a worker pool, every worker recycles its own
//!   buffers with no cross-thread contention on the hot path;
//! - the **counters are aggregated across threads**: [`stats`] sums the
//!   per-thread atomic counters of every thread that ever touched the
//!   pool, and [`reset`] zeroes them all — so tests and benches measure
//!   the whole process, not whichever thread happened to call;
//! - at most [`MAX_POOLED_BUFFERS`] buffers retained per thread, each at
//!   most [`MAX_BUFFER_CAPACITY`] bytes, so a one-off giant record
//!   cannot pin memory forever.
//!
//! Returned buffers are always cleared; `take` never exposes stale
//! bytes. Pooling only affects *where* scratch space comes from, never
//! the bytes written through it, so determinism is unaffected.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Most buffers the pool retains per thread.
pub const MAX_POOLED_BUFFERS: usize = 32;

/// Largest buffer the pool will retain (larger ones are dropped on
/// `give` and fall back to the allocator).
pub const MAX_BUFFER_CAPACITY: usize = 8 << 20;

/// Counters describing pool effectiveness, for tests and benches.
/// Aggregated over every thread that used the pool since the last
/// [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from the pool.
    pub hits: u64,
    /// `take` calls that had to allocate fresh.
    pub misses: u64,
    /// Buffers returned and retained.
    pub returns: u64,
    /// Buffers rejected on return (pool full or buffer oversized).
    pub rejects: u64,
}

/// One thread's counters, shared with the global registry so [`stats`]
/// can sum them and [`reset`] can zero them from any thread. The free
/// list itself never leaves its owning thread.
#[derive(Default)]
struct ThreadStats {
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    rejects: AtomicU64,
}

impl ThreadStats {
    fn zero(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.returns.store(0, Ordering::Relaxed);
        self.rejects.store(0, Ordering::Relaxed);
    }
}

/// Every thread's stats block, registered on that thread's first pool
/// use. Entries outlive their threads (a handful of `AtomicU64`s each),
/// which keeps `stats()` sums stable after workers exit.
static REGISTRY: Mutex<Vec<Arc<ThreadStats>>> = Mutex::new(Vec::new());

/// Bumped by [`reset`]; threads drop their pooled buffers lazily when
/// they notice the generation moved, so `reset` empties every thread's
/// free list without touching another thread's `RefCell`.
static GENERATION: AtomicU64 = AtomicU64::new(0);

struct Pool {
    bufs: Vec<Vec<u8>>,
    stats: Arc<ThreadStats>,
    generation: u64,
}

impl Pool {
    fn new() -> Pool {
        let stats = Arc::new(ThreadStats::default());
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&stats));
        Pool {
            bufs: Vec::new(),
            stats,
            generation: GENERATION.load(Ordering::Relaxed),
        }
    }

    /// Drops stale buffers after a cross-thread [`reset`].
    fn sync_generation(&mut self) {
        let current = GENERATION.load(Ordering::Relaxed);
        if self.generation != current {
            self.bufs.clear();
            self.generation = current;
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Takes a cleared buffer with `capacity() >= min_capacity`.
///
/// Prefers the pooled buffer whose capacity fits best; allocates fresh
/// when the pool is empty or nothing is large enough (growing a pooled
/// buffer would just move the allocation, so undersized entries stay
/// pooled for smaller requests).
///
/// # Examples
///
/// ```
/// let buf = splitserve_rt::pool::take(1024);
/// assert!(buf.capacity() >= 1024 && buf.is_empty());
/// splitserve_rt::pool::give(buf);
/// ```
pub fn take(min_capacity: usize) -> Vec<u8> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.sync_generation();
        let best = p
            .bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= min_capacity)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                p.stats.hits.fetch_add(1, Ordering::Relaxed);
                p.bufs.swap_remove(i)
            }
            None => {
                p.stats.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(min_capacity)
            }
        }
    })
}

/// Returns `buf` to the calling thread's pool for reuse.
///
/// The buffer is cleared before it is stored. Oversized buffers and
/// returns beyond the pool's bound are dropped (allocator takes them
/// back), so the pool's resident memory stays bounded.
pub fn give(mut buf: Vec<u8>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.sync_generation();
        if buf.capacity() == 0
            || buf.capacity() > MAX_BUFFER_CAPACITY
            || p.bufs.len() >= MAX_POOLED_BUFFERS
        {
            p.stats.rejects.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.clear();
        p.stats.returns.fetch_add(1, Ordering::Relaxed);
        p.bufs.push(buf);
    });
}

/// The pool counters summed across every thread that used the pool.
pub fn stats() -> PoolStats {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut total = PoolStats::default();
    for t in registry.iter() {
        total.hits += t.hits.load(Ordering::Relaxed);
        total.misses += t.misses.load(Ordering::Relaxed);
        total.returns += t.returns.load(Ordering::Relaxed);
        total.rejects += t.rejects.load(Ordering::Relaxed);
    }
    total
}

/// Zeroes the counters of **all** registered threads and schedules every
/// thread's pooled buffers for release (each thread drops its free list
/// on its next pool operation; the calling thread drops its own
/// immediately). Test isolation across a whole worker pool.
pub fn reset() {
    GENERATION.fetch_add(1, Ordering::Relaxed);
    {
        let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        for t in registry.iter() {
            t.zero();
        }
    }
    POOL.with(|p| p.borrow_mut().sync_generation());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stats are process-global now, so tests touching them must not
    /// interleave with each other.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn round_trip_reuses_the_allocation() {
        let _guard = serial();
        reset();
        let mut a = take(100);
        a.extend_from_slice(b"scratch");
        let cap = a.capacity();
        let ptr = a.as_ptr();
        give(a);
        let b = take(50);
        assert_eq!(b.as_ptr(), ptr, "same allocation must come back");
        assert!(b.capacity() >= cap.min(100));
        assert!(b.is_empty(), "pooled buffers are cleared");
        let s = stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
    }

    #[test]
    fn undersized_buffers_are_skipped_not_grown() {
        let _guard = serial();
        reset();
        give(Vec::with_capacity(16));
        let big = take(1 << 16);
        assert!(big.capacity() >= 1 << 16);
        assert_eq!(stats().misses, 1, "small pooled buffer must not serve");
        // The 16-byte buffer is still pooled for a fitting request.
        let small = take(8);
        assert_eq!(stats().hits, 1);
        assert!(small.capacity() >= 8);
    }

    #[test]
    fn pool_is_bounded() {
        let _guard = serial();
        reset();
        for _ in 0..MAX_POOLED_BUFFERS + 5 {
            give(Vec::with_capacity(64));
        }
        let s = stats();
        assert_eq!(s.returns, MAX_POOLED_BUFFERS as u64);
        assert_eq!(s.rejects, 5);
        // Oversized buffers are never retained.
        give(Vec::with_capacity(MAX_BUFFER_CAPACITY + 1));
        assert_eq!(stats().rejects, 6);
    }

    #[test]
    fn best_fit_prefers_tightest_capacity() {
        let _guard = serial();
        reset();
        give(Vec::with_capacity(4096));
        give(Vec::with_capacity(256));
        let b = take(100);
        assert!(b.capacity() < 4096, "tightest fitting buffer serves first");
    }

    #[test]
    fn stats_aggregate_across_threads() {
        let _guard = serial();
        reset();
        give(Vec::with_capacity(64)); // this thread: 1 return
        std::thread::spawn(|| {
            let buf = take(32); // other thread: 1 miss (its pool is empty)
            give(buf); // …and 1 return
        })
        .join()
        .expect("helper thread");
        let s = stats();
        assert_eq!(s.misses, 1, "other thread's miss must be visible");
        assert_eq!(s.returns, 2, "returns sum over both threads");
    }

    #[test]
    fn reset_clears_other_threads_counters_and_buffers() {
        let _guard = serial();
        reset();
        // Seed another thread's pool, then reset from this one; the other
        // thread must observe zeroed stats and an emptied free list.
        let (seed_tx, seed_rx) = std::sync::mpsc::channel();
        let (reset_tx, reset_rx) = std::sync::mpsc::channel();
        let helper = std::thread::spawn(move || {
            give(Vec::with_capacity(64));
            seed_tx.send(()).unwrap();
            reset_rx.recv().unwrap();
            // After the cross-thread reset the pooled buffer is gone, so
            // this take must miss.
            let buf = take(8);
            assert!(buf.capacity() >= 8);
        });
        seed_rx.recv().unwrap();
        assert_eq!(stats().returns, 1);
        reset();
        assert_eq!(stats(), PoolStats::default(), "reset zeroes every thread");
        reset_tx.send(()).unwrap();
        helper.join().expect("helper thread");
        let s = stats();
        assert_eq!((s.hits, s.misses), (0, 1), "post-reset take missed");
    }
}
