//! A thread-local pool of reusable byte buffers.
//!
//! Every shuffle map task encodes its output into freshly grown `Vec`s,
//! and a wide stage runs thousands of tasks — under the old path the
//! allocator served (and immediately reclaimed) one multi-kilobyte
//! buffer per bucket per task. The pool recycles those buffers: a task
//! [`take`]s a buffer with at least the capacity its size hint predicts,
//! fills it, snapshots the bytes into an exact-sized block, and
//! [`give`]s the buffer back for the next task.
//!
//! The pool is deliberately modest and bounded — it is a steady-state
//! allocation damper, not a general allocator:
//!
//! - thread-local, so there is no locking (the simulator is
//!   single-threaded per run anyway);
//! - at most [`MAX_POOLED_BUFFERS`] buffers retained, each at most
//!   [`MAX_BUFFER_CAPACITY`] bytes, so a one-off giant record cannot pin
//!   memory forever.
//!
//! Returned buffers are always cleared; `take` never exposes stale
//! bytes. Pooling only affects *where* scratch space comes from, never
//! the bytes written through it, so determinism is unaffected.

use std::cell::RefCell;

/// Most buffers the pool retains per thread.
pub const MAX_POOLED_BUFFERS: usize = 32;

/// Largest buffer the pool will retain (larger ones are dropped on
/// `give` and fall back to the allocator).
pub const MAX_BUFFER_CAPACITY: usize = 8 << 20;

/// Counters describing pool effectiveness, for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from the pool.
    pub hits: u64,
    /// `take` calls that had to allocate fresh.
    pub misses: u64,
    /// Buffers returned and retained.
    pub returns: u64,
    /// Buffers rejected on return (pool full or buffer oversized).
    pub rejects: u64,
}

#[derive(Default)]
struct Pool {
    bufs: Vec<Vec<u8>>,
    stats: PoolStats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Takes a cleared buffer with `capacity() >= min_capacity`.
///
/// Prefers the pooled buffer whose capacity fits best; allocates fresh
/// when the pool is empty or nothing is large enough (growing a pooled
/// buffer would just move the allocation, so undersized entries stay
/// pooled for smaller requests).
///
/// # Examples
///
/// ```
/// let buf = splitserve_rt::pool::take(1024);
/// assert!(buf.capacity() >= 1024 && buf.is_empty());
/// splitserve_rt::pool::give(buf);
/// ```
pub fn take(min_capacity: usize) -> Vec<u8> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let best = p
            .bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= min_capacity)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                p.stats.hits += 1;
                p.bufs.swap_remove(i)
            }
            None => {
                p.stats.misses += 1;
                Vec::with_capacity(min_capacity)
            }
        }
    })
}

/// Returns `buf` to the pool for reuse.
///
/// The buffer is cleared before it is stored. Oversized buffers and
/// returns beyond the pool's bound are dropped (allocator takes them
/// back), so the pool's resident memory stays bounded.
pub fn give(mut buf: Vec<u8>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if buf.capacity() == 0
            || buf.capacity() > MAX_BUFFER_CAPACITY
            || p.bufs.len() >= MAX_POOLED_BUFFERS
        {
            p.stats.rejects += 1;
            return;
        }
        buf.clear();
        p.stats.returns += 1;
        p.bufs.push(buf);
    });
}

/// This thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Drops all pooled buffers and zeroes the counters (test isolation).
pub fn reset() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.bufs.clear();
        p.stats = PoolStats::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_the_allocation() {
        reset();
        let mut a = take(100);
        a.extend_from_slice(b"scratch");
        let cap = a.capacity();
        let ptr = a.as_ptr();
        give(a);
        let b = take(50);
        assert_eq!(b.as_ptr(), ptr, "same allocation must come back");
        assert!(b.capacity() >= cap.min(100));
        assert!(b.is_empty(), "pooled buffers are cleared");
        let s = stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
    }

    #[test]
    fn undersized_buffers_are_skipped_not_grown() {
        reset();
        give(Vec::with_capacity(16));
        let big = take(1 << 16);
        assert!(big.capacity() >= 1 << 16);
        assert_eq!(stats().misses, 1, "small pooled buffer must not serve");
        // The 16-byte buffer is still pooled for a fitting request.
        let small = take(8);
        assert_eq!(stats().hits, 1);
        assert!(small.capacity() >= 8);
    }

    #[test]
    fn pool_is_bounded() {
        reset();
        for _ in 0..MAX_POOLED_BUFFERS + 5 {
            give(Vec::with_capacity(64));
        }
        let s = stats();
        assert_eq!(s.returns, MAX_POOLED_BUFFERS as u64);
        assert_eq!(s.rejects, 5);
        // Oversized buffers are never retained.
        give(Vec::with_capacity(MAX_BUFFER_CAPACITY + 1));
        assert_eq!(stats().rejects, 6);
    }

    #[test]
    fn best_fit_prefers_tightest_capacity() {
        reset();
        give(Vec::with_capacity(4096));
        give(Vec::with_capacity(256));
        let b = take(100);
        assert!(b.capacity() < 4096, "tightest fitting buffer serves first");
    }
}
