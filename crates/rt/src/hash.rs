//! Fast, seeded, deterministic hashing for the shuffle data plane.
//!
//! Shuffle partitioning must satisfy two constraints at once: it is the
//! hottest per-record operation in every wide stage (CloudSort hashes
//! every key at least twice — map-side bucketing and combine grouping),
//! and it must be **frozen forever** so that a run recorded in
//! `results_paper.txt` partitions identically on any toolchain. The
//! standard library's `DefaultHasher` fails the first constraint (SipHash
//! is keyed for DoS resistance the simulator does not need) and only
//! accidentally satisfies the second (its algorithm is explicitly
//! documented as subject to change).
//!
//! [`XxHash64`] implements the XXH64 algorithm: 64-bit multiply/rotate
//! lanes over 32-byte stripes, consuming long keys at several bytes per
//! cycle while still avalanching well on the 8-byte integer keys the
//! workloads use. The byte streams it produces are pinned by golden
//! values in this module's tests; changing them is a wire-format break.
//!
//! [`shuffle_hash`] is the one entry point the engine uses: XXH64 with
//! the fixed [`SHUFFLE_HASH_SEED`], so every map task of every run places
//! a given key in the same bucket.

use std::hash::{Hash, Hasher};

/// The fixed seed every shuffle hash uses (`b"SPLITSRV"` as a big-endian
/// integer). Changing it re-partitions every shuffle and invalidates all
/// recorded benchmark trajectories.
pub const SHUFFLE_HASH_SEED: u64 = 0x53504c4954535256;

const P1: u64 = 0x9e37_79b1_85eb_ca87;
const P2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const P3: u64 = 0x1656_67b1_9e37_79f9;
const P4: u64 = 0x85eb_ca77_c2b2_ae63;
const P5: u64 = 0x27d4_eb2f_1656_67c5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8-byte chunk"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4-byte chunk"))
}

/// A streaming XXH64 hasher with an explicit seed.
///
/// Implements [`std::hash::Hasher`], so any `K: Hash` key feeds it
/// directly. Unlike `DefaultHasher`, the output is part of this crate's
/// stability contract.
///
/// # Examples
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use splitserve_rt::hash::XxHash64;
///
/// let mut h = XxHash64::with_seed(7);
/// 42u64.hash(&mut h);
/// let a = h.finish();
/// let mut h2 = XxHash64::with_seed(7);
/// 42u64.hash(&mut h2);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct XxHash64 {
    seed: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    v4: u64,
    buf: [u8; 32],
    buf_len: usize,
    total_len: u64,
}

impl XxHash64 {
    /// A hasher with the given seed.
    pub fn with_seed(seed: u64) -> XxHash64 {
        XxHash64 {
            seed,
            v1: seed.wrapping_add(P1).wrapping_add(P2),
            v2: seed.wrapping_add(P2),
            v3: seed,
            v4: seed.wrapping_sub(P1),
            buf: [0; 32],
            buf_len: 0,
            total_len: 0,
        }
    }

    #[inline]
    fn consume_stripe(&mut self, stripe: &[u8]) {
        self.v1 = round(self.v1, read_u64(&stripe[0..]));
        self.v2 = round(self.v2, read_u64(&stripe[8..]));
        self.v3 = round(self.v3, read_u64(&stripe[16..]));
        self.v4 = round(self.v4, read_u64(&stripe[24..]));
    }
}

impl Hasher for XxHash64 {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        self.total_len += bytes.len() as u64;
        // Top up a partially-filled buffer first.
        if self.buf_len > 0 {
            let need = 32 - self.buf_len;
            let take = need.min(bytes.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len < 32 {
                return;
            }
            let stripe = self.buf;
            self.consume_stripe(&stripe);
            self.buf_len = 0;
        }
        // Whole stripes straight from the input, no copy.
        while bytes.len() >= 32 {
            let (stripe, rest) = bytes.split_at(32);
            self.consume_stripe(stripe);
            bytes = rest;
        }
        // Stash the tail.
        self.buf[..bytes.len()].copy_from_slice(bytes);
        self.buf_len = bytes.len();
    }

    fn finish(&self) -> u64 {
        let mut acc = if self.total_len >= 32 {
            let mut a = self
                .v1
                .rotate_left(1)
                .wrapping_add(self.v2.rotate_left(7))
                .wrapping_add(self.v3.rotate_left(12))
                .wrapping_add(self.v4.rotate_left(18));
            a = merge_round(a, self.v1);
            a = merge_round(a, self.v2);
            a = merge_round(a, self.v3);
            merge_round(a, self.v4)
        } else {
            self.seed.wrapping_add(P5)
        };
        acc = acc.wrapping_add(self.total_len);
        let mut tail = &self.buf[..self.buf_len];
        while tail.len() >= 8 {
            acc ^= round(0, read_u64(tail));
            acc = acc.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
            tail = &tail[8..];
        }
        if tail.len() >= 4 {
            acc ^= u64::from(read_u32(tail)).wrapping_mul(P1);
            acc = acc.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
            tail = &tail[4..];
        }
        for &b in tail {
            acc ^= u64::from(b).wrapping_mul(P5);
            acc = acc.rotate_left(11).wrapping_mul(P1);
        }
        acc ^= acc >> 33;
        acc = acc.wrapping_mul(P2);
        acc ^= acc >> 29;
        acc = acc.wrapping_mul(P3);
        acc ^ (acc >> 32)
    }
}

/// Hashes one value with XXH64 under the fixed [`SHUFFLE_HASH_SEED`] —
/// the hash every shuffle bucket decision derives from.
///
/// # Examples
///
/// ```
/// use splitserve_rt::hash::shuffle_hash;
///
/// assert_eq!(shuffle_hash(&7u64), shuffle_hash(&7u64));
/// assert_ne!(shuffle_hash(&7u64), shuffle_hash(&8u64));
/// ```
#[inline]
pub fn shuffle_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = XxHash64::with_seed(SHUFFLE_HASH_SEED);
    value.hash(&mut h);
    h.finish()
}

/// A fast, fixed-seed multiplicative hasher for small integer keys
/// (FxHash-style word folding).
///
/// The scheduler's hot maps are keyed by dense integers — attempt ids,
/// shuffle ids, `(job, stage)` pairs — where SipHash's DoS hardening is
/// pure overhead: the keys come from the simulator itself, never from an
/// adversary. `FxHasher64` folds each word in with a rotate + multiply,
/// costing a couple of cycles per `u64`. It is deterministic across runs
/// and platforms, so switching a `HashMap` to it makes iteration order
/// *more* reproducible than `RandomState`, never less.
///
/// Not suitable for the shuffle's record partitioning (weak avalanche on
/// the low bits) — that stays on [`XxHash64`].
#[derive(Debug, Default, Clone)]
pub struct FxHasher64 {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            self.add_word(read_u64(rest));
            rest = &rest[8..];
        }
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Mix the high bits down: HashMap buckets use the low bits.
        let h = self.hash;
        h ^ (h >> 32)
    }
}

/// `BuildHasher` for [`FxHasher64`]: a zero-sized, fixed-seed state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher64;
    #[inline]
    fn build_hasher(&self) -> FxHasher64 {
        FxHasher64::default()
    }
}

/// A `HashMap` keyed with the fast fixed-seed hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with the fast fixed-seed hasher.
pub type FastSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn xxh(seed: u64, bytes: &[u8]) -> u64 {
        let mut h = XxHash64::with_seed(seed);
        h.write(bytes);
        h.finish()
    }

    /// Golden values freeze the byte streams forever: any change to the
    /// algorithm (or its constants) re-partitions every recorded shuffle
    /// and must fail loudly here.
    #[test]
    fn golden_values_are_frozen() {
        let golden: &[(u64, &[u8], u64)] = &[
            (0, b"", 0xef46_db37_51d8_e999),
            (0, b"a", 0xd24e_c4f1_a98c_6e5b),
            (0, b"abc", 0x44bc_2cf5_ad77_0999),
            (
                0,
                b"0123456789abcdef0123456789abcdef0123456789abcdef",
                0xe352_1644_4a3c_253b,
            ),
        ];
        for (seed, input, expect) in golden {
            assert_eq!(
                xxh(*seed, input),
                *expect,
                "XXH64(seed={seed}, {input:?}) drifted"
            );
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        splitserve_rt_check_split(|bytes, splits| {
            let one_shot = xxh(SHUFFLE_HASH_SEED, bytes);
            let mut h = XxHash64::with_seed(SHUFFLE_HASH_SEED);
            let mut rest = bytes;
            for &s in splits {
                let (a, b) = rest.split_at(s.min(rest.len()));
                h.write(a);
                rest = b;
            }
            h.write(rest);
            assert_eq!(h.finish(), one_shot, "chunking must not change the hash");
        });
    }

    /// Drives the streaming property over deterministic pseudo-random
    /// inputs and chunkings without depending on the `check` harness's
    /// public surface from inside the crate.
    fn splitserve_split_cases() -> Vec<(Vec<u8>, Vec<usize>)> {
        let mut rng = crate::Rng::seed_from_u64(0x5eed);
        (0..64)
            .map(|_| {
                let n = rng.gen_range(0u64..200) as usize;
                let mut bytes = vec![0u8; n];
                rng.fill(&mut bytes);
                let splits = (0..rng.gen_range(0u64..5))
                    .map(|_| rng.gen_range(0u64..64) as usize)
                    .collect();
                (bytes, splits)
            })
            .collect()
    }

    fn splitserve_rt_check_split(mut f: impl FnMut(&[u8], &[usize])) {
        for (bytes, splits) in splitserve_split_cases() {
            f(&bytes, &splits);
        }
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        const BUCKETS: u64 = 16;
        let mut counts = [0u64; BUCKETS as usize];
        for k in 0u64..16_000 {
            counts[(shuffle_hash(&k) % BUCKETS) as usize] += 1;
        }
        let expect = 16_000 / BUCKETS;
        for (b, c) in counts.iter().enumerate() {
            assert!(
                (*c as i64 - expect as i64).unsigned_abs() < expect / 4,
                "bucket {b} holds {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let h = |k: u64| FxBuildHasher.hash_one(k);
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        // Sequential keys must not collide in the low bits HashMap uses.
        let mut low: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for k in 0u64..1024 {
            low.insert(h(k) & 0x3ff);
        }
        assert!(low.len() > 512, "low-bit spread too poor: {}", low.len());
    }

    #[test]
    fn fx_hasher_handles_byte_tails() {
        use std::hash::BuildHasher;
        let h = |s: &str| FxBuildHasher.hash_one(s);
        assert_eq!(h("abc"), h("abc"));
        assert_ne!(h("abc"), h("abd"));
        assert_ne!(h("0123456789"), h("0123456788"));
    }

    #[test]
    fn seed_changes_the_stream() {
        assert_ne!(xxh(0, b"key"), xxh(1, b"key"));
        assert_ne!(xxh(SHUFFLE_HASH_SEED, b"key"), xxh(0, b"key"));
    }

    #[test]
    fn hasher_integration_with_std_hash() {
        // Tuples, strings and integers all route through `write`.
        assert_eq!(
            shuffle_hash(&(1u64, "x".to_string())),
            shuffle_hash(&(1u64, "x".to_string()))
        );
        assert_ne!(shuffle_hash(&1u32), shuffle_hash(&2u32));
    }
}
